(* The performance study the paper announces in §6: "a performance study
   of the different approaches, taking into account different workloads
   and failures assumptions". Absolute numbers are simulator-relative;
   the comparisons (who wins, where, by what shape) are the result. *)

open Sim

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let section title =
  hr ();
  Fmt.pr "%s@." title;
  hr ()

(* Passthrough factories: wire traffic == protocol message pattern.
   Every technique declares "passthrough" in its schema, so the whole
   sweep comes off the registry instead of ten hand-written configs. *)
let techniques : (string * Workload.Runner.factory) list =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      (e.key, Protocols.Registry.configure_exn e [ ("passthrough", "true") ]))
    Protocols.Registry.all

let technique name = List.assoc name techniques

(* Machine-readable results: each perf* writes BENCH_perfN.json next to
   its printed table (same numbers, schema-checked by
   [replisim bench-check]). *)
let bench_out ?config name =
  Workload.Bench_out.create ?config ~bench:name ~seed:11 ~n_replicas:3 ()

let abort_pct (result : Workload.Runner.result) =
  let total = result.Workload.Runner.committed + result.Workload.Runner.aborted in
  if total = 0 then 0.
  else 100. *. float_of_int result.Workload.Runner.aborted /. float_of_int total

(* --- perf1: response time vs degree of replication ------------------- *)

let latency_vs_replicas () =
  section
    "perf1 — Update response time (ms, mean) vs number of replicas \
     (100% updates)";
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 1.0;
      txns_per_client = 30;
      n_keys = 200;
    }
  in
  let ns = [ 3; 5; 7; 9 ] in
  let out = bench_out "perf1" in
  Fmt.pr "%-18s" "technique";
  List.iter (fun n -> Fmt.pr "%10s" (Printf.sprintf "n=%d" n)) ns;
  Fmt.pr "@.";
  List.iter
    (fun (name, factory) ->
      Fmt.pr "%-18s" name;
      List.iter
        (fun n ->
          let result =
            Workload.Runner.run ~n_replicas:n ~n_clients:2 ~spec factory
          in
          let mean = result.Workload.Runner.latency_ms.Workload.Stats.mean in
          Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
            ~unit_:"ms"
            ~params:[ ("n", string_of_int n) ]
            mean;
          Fmt.pr "%10.2f" mean)
        ns;
      Fmt.pr "@.")
    techniques;
  ignore (Workload.Bench_out.write out)

(* --- perf2: throughput and aborts vs update ratio --------------------- *)

let mix_sweep () =
  section
    "perf2 — Throughput (committed txn/s) and abort rate vs update ratio \
     (n=3)";
  let ratios = [ 0.0; 0.2; 0.5; 0.8; 1.0 ] in
  let out = bench_out "perf2" in
  Fmt.pr "%-18s" "technique";
  List.iter (fun r -> Fmt.pr "%16s" (Printf.sprintf "%.0f%%upd" (100. *. r))) ratios;
  Fmt.pr "@.";
  List.iter
    (fun (name, factory) ->
      Fmt.pr "%-18s" name;
      List.iter
        (fun update_ratio ->
          let spec =
            {
              Workload.Spec.default with
              update_ratio;
              txns_per_client = 40;
              n_keys = 50;
              key_skew = 0.9;
            }
          in
          let result = Workload.Runner.run ~n_clients:4 ~spec factory in
          let ab = abort_pct result in
          let params = [ ("update_ratio", Printf.sprintf "%.1f" update_ratio) ] in
          Workload.Bench_out.add out ~metric:"throughput" ~technique:name
            ~unit_:"txn/s" ~params result.Workload.Runner.throughput;
          Workload.Bench_out.add out ~metric:"abort_pct" ~technique:name
            ~unit_:"%" ~params ab;
          Fmt.pr "%16s"
            (Printf.sprintf "%.0f/s %.0f%%ab" result.Workload.Runner.throughput
               ab))
        ratios;
      Fmt.pr "@.")
    techniques;
  ignore (Workload.Bench_out.write out)

(* --- perf3: failover behaviour ---------------------------------------- *)

let failover () =
  section
    "perf3 — Failure assumptions: crash of replica 0 at t=100ms under a \
     steady update stream";
  let out = bench_out "perf3" in
  Fmt.pr "%-18s %14s %14s %10s %10s@." "technique" "max gap (ms)"
    "p99 lat (ms)" "committed" "converged";
  List.iter
    (fun (name, factory) ->
      let spec =
        {
          Workload.Spec.default with
          update_ratio = 1.0;
          txns_per_client = 40;
          think_time = Simtime.of_ms 2;
        }
      in
      let result =
        Workload.Runner.run ~n_replicas:3 ~n_clients:2 ~spec
          ~failures:[ Workload.Runner.crash_at ~at:(Simtime.of_ms 100) 0 ]
          factory
      in
      Workload.Bench_out.add out ~metric:"max_response_gap" ~technique:name
        ~unit_:"ms"
        (Simtime.to_ms result.Workload.Runner.max_response_gap);
      Workload.Bench_out.add out ~metric:"latency_p99" ~technique:name
        ~unit_:"ms" result.Workload.Runner.latency_ms.Workload.Stats.p99;
      Workload.Bench_out.add out ~metric:"committed" ~technique:name
        ~unit_:"txns"
        (float_of_int result.Workload.Runner.committed);
      Fmt.pr "%-18s %14.1f %14.1f %10d %10b@." name
        (Simtime.to_ms result.Workload.Runner.max_response_gap)
        result.Workload.Runner.latency_ms.Workload.Stats.p99
        result.Workload.Runner.committed result.Workload.Runner.converged)
    techniques;
  ignore (Workload.Bench_out.write out);
  Fmt.pr
    "@.Reading: active/semi-active/semi-passive mask the crash (gap ≈ \
     detection time);@.primary-based techniques pay a visible take-over \
     (client retry) spike.@."

(* --- perf4: eager vs lazy --------------------------------------------- *)

let eager_vs_lazy () =
  section
    "perf4 — Eager vs lazy: client latency vs inconsistency window (n=3)";
  let pairs =
    [
      ("eager-primary", "lazy-primary");
      ("eager-ue-abcast", "lazy-ue");
    ]
  in
  Fmt.pr "%-18s %16s %22s@." "technique" "upd latency (ms)"
    "convergence lag (ms)";
  let measure name =
    (* Custom loop to measure how long after the last client response the
       replicas take to converge. *)
    let factory = technique name in
    let engine = Engine.create ~seed:21 () in
    let net = Network.create engine ~n:5 Network.default_config in
    let replicas = [ 0; 1; 2 ] and clients = [ 3; 4 ] in
    let inst = factory net ~replicas ~clients in
    let lat = Workload.Stats.recorder () in
    let last_reply = ref Simtime.zero in
    let gen = Workload.Generator.create ~seed:5
        { Workload.Spec.default with update_ratio = 1.0; txns_per_client = 20 }
    in
    List.iter
      (fun client ->
        let rec go i =
          if i < 20 then begin
            let _, req = Workload.Generator.request gen ~client in
            let t0 = Engine.now engine in
            inst.Core.Technique.submit ~client req (fun reply ->
                Workload.Stats.record lat
                  (Simtime.to_ms (Simtime.sub reply.Core.Technique.at t0));
                last_reply := Simtime.max !last_reply reply.Core.Technique.at;
                go (i + 1))
          end
        in
        go 0)
      clients;
    (* Step until all replies are in, then until converged. *)
    ignore (Engine.run ~until:(Simtime.of_sec 30.) ~max_events:5_000_000 engine);
    let stores = List.map inst.Core.Technique.replica_store replicas in
    ignore stores;
    (* Re-run time-travel style: we can't rewind, so approximate the
       convergence lag with a second pass: run a fresh instance, stop the
       engine at the moment of the last reply, then step in 1ms slices
       until converged. *)
    let engine2 = Engine.create ~seed:21 () in
    let net2 = Network.create engine2 ~n:5 Network.default_config in
    let inst2 = factory net2 ~replicas ~clients in
    let gen2 = Workload.Generator.create ~seed:5
        { Workload.Spec.default with update_ratio = 1.0; txns_per_client = 20 }
    in
    let last2 = ref Simtime.zero in
    List.iter
      (fun client ->
        let rec go i =
          if i < 20 then begin
            let _, req = Workload.Generator.request gen2 ~client in
            inst2.Core.Technique.submit ~client req (fun reply ->
                last2 := Simtime.max !last2 reply.Core.Technique.at;
                go (i + 1))
          end
        in
        go 0)
      clients;
    (* Run until no more client work is outstanding. *)
    let rec drain_replies () =
      let before = !last2 in
      ignore
        (Engine.run
           ~until:(Simtime.add (Engine.now engine2) (Simtime.of_ms 50))
           engine2);
      if Simtime.(!last2 > before) then drain_replies ()
    in
    drain_replies ();
    let stores2 = List.map inst2.Core.Technique.replica_store replicas in
    let t_last = !last2 in
    let rec until_converged () =
      if
        Core.Convergence.converged stores2
        || Simtime.(Engine.now engine2 > Simtime.of_sec 60.)
      then Engine.now engine2
      else begin
        ignore
          (Engine.run
             ~until:(Simtime.add (Engine.now engine2) (Simtime.of_ms 1))
             engine2);
        until_converged ()
      end
    in
    let t_conv = until_converged () in
    let lag = Simtime.to_ms (Simtime.sub t_conv t_last) in
    ((Workload.Stats.summary lat).Workload.Stats.mean, lag)
  in
  let out = bench_out "perf4" in
  List.iter
    (fun (eager, lazy_) ->
      List.iter
        (fun name ->
          let latency, lag = measure name in
          Workload.Bench_out.add out ~metric:"update_latency_mean"
            ~technique:name ~unit_:"ms" latency;
          Workload.Bench_out.add out ~metric:"convergence_lag" ~technique:name
            ~unit_:"ms" lag;
          Fmt.pr "%-18s %16.2f %22.1f@." name latency lag)
        [ eager; lazy_ ])
    pairs;
  ignore (Workload.Bench_out.write out);
  Fmt.pr
    "@.Reading: lazy halves the client-visible latency but leaves a window@.\
     during which copies diverge; eager pays the coordination before END.@."

(* --- perf5: messages per transaction ----------------------------------- *)

let message_counts () =
  section "perf5 — Messages and communication steps per update transaction";
  let out = bench_out "perf5" in
  Fmt.pr "%-18s %12s %14s@." "technique" "msgs/txn" "latency (ms)";
  List.iter
    (fun (name, factory) ->
      (* Background traffic (heartbeats) is measured on an idle instance
         and subtracted. *)
      let idle_rate =
        let engine = Engine.create ~seed:9 () in
        let net = Network.create engine ~n:4 Network.default_config in
        let inst = factory net ~replicas:[ 0; 1; 2 ] ~clients:[ 3 ] in
        ignore inst;
        ignore (Engine.run ~until:(Simtime.of_sec 1.) engine);
        float_of_int (Network.messages_sent net)
      in
      let engine = Engine.create ~seed:9 () in
      let net = Network.create engine ~n:4 Network.default_config in
      let inst = factory net ~replicas:[ 0; 1; 2 ] ~clients:[ 3 ] in
      let n_txns = 50 in
      let lat = Workload.Stats.recorder () in
      let rec go i =
        if i < n_txns then begin
          let req =
            Store.Operation.request ~client:3 [ Store.Operation.Incr ("x", 1) ]
          in
          let t0 = Engine.now engine in
          inst.Core.Technique.submit ~client:3 req (fun reply ->
              Workload.Stats.record lat
                (Simtime.to_ms (Simtime.sub reply.Core.Technique.at t0));
              go (i + 1))
        end
      in
      go 0;
      ignore (Engine.run ~until:(Simtime.of_sec 1.) engine);
      let total = float_of_int (Network.messages_sent net) in
      let per_txn = (total -. idle_rate) /. float_of_int n_txns in
      Workload.Bench_out.add out ~metric:"messages_per_txn" ~technique:name
        ~unit_:"messages" (max 0. per_txn);
      Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
        ~unit_:"ms" (Workload.Stats.summary lat).Workload.Stats.mean;
      Fmt.pr "%-18s %12.1f %14.2f@." name (max 0. per_txn)
        (Workload.Stats.summary lat).Workload.Stats.mean)
    techniques;
  ignore (Workload.Bench_out.write out);
  Fmt.pr
    "@.Reading: lazy primary is the cheapest (one round + deferred refresh);@.\
     distributed locking pays per-operation lock+exec rounds plus 2PC.@."


(* --- perf6: LAN vs WAN ------------------------------------------------- *)

let wan () =
  section
    "perf6 — Geo-distribution: update latency (ms, mean), LAN vs WAN \
     between sites";
  (* WAN: replicas sit at distant sites (25ms one-way between them);
     each client is co-located with its local replica (0.5ms). *)
  let wan_tune net ~replicas ~clients =
    let wan = Network.Constant (Simtime.of_ms 25) in
    let lan = Network.Uniform (Simtime.of_us 300, Simtime.of_us 700) in
    List.iter
      (fun a ->
        List.iter
          (fun b -> if a < b then Network.set_link_latency net a b wan)
          replicas)
      replicas;
    List.iter
      (fun c ->
        let local = List.nth replicas (c mod List.length replicas) in
        List.iter
          (fun r ->
            Network.set_link_latency net c r
              (if r = local then lan else wan))
          replicas)
      clients
  in
  let spec =
    { Workload.Spec.default with update_ratio = 1.0; txns_per_client = 20 }
  in
  let out = bench_out "perf6" in
  Fmt.pr "%-18s %12s %12s %10s@." "technique" "LAN" "WAN" "ratio";
  List.iter
    (fun (name, factory) ->
      let lan_result = Workload.Runner.run ~n_clients:3 ~spec factory in
      let wan_result =
        Workload.Runner.run ~n_clients:3 ~spec ~tune:wan_tune
          ~deadline:(Simtime.of_sec 600.) factory
      in
      let l = lan_result.Workload.Runner.latency_ms.Workload.Stats.mean in
      let w = wan_result.Workload.Runner.latency_ms.Workload.Stats.mean in
      Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
        ~unit_:"ms" ~params:[ ("net", "lan") ] l;
      Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
        ~unit_:"ms" ~params:[ ("net", "wan") ] w;
      Fmt.pr "%-18s %12.2f %12.2f %9.1fx@." name l w
        (if l > 0. then w /. l else 0.))
    techniques;
  ignore (Workload.Bench_out.write out);
  Fmt.pr
    "@.Reading: over a WAN the coordination rounds dominate: eager@.\
     techniques inflate by the number of wide-area round trips they@.\
     make before END, while lazy techniques stay at the local round@.\
     trip — the paper's \"access data locally\" motivation (§4).@."


(* --- perf7: where the time goes, phase by phase ------------------------ *)

let phase_breakdown () =
  section
    "perf7 — Phase-by-phase latency decomposition (ms, mean span duration \
     over a 100%-update run)";
  let out = bench_out "perf7" in
  Fmt.pr "%-18s %10s %10s %10s %10s %10s %10s@." "technique" "RE" "SC" "EX"
    "AC" "total" "tail";
  List.iter
    (fun (name, factory) ->
      let engine = Engine.create ~seed:77 () in
      let net = Network.create engine ~n:5 Network.default_config in
      let replicas = [ 0; 1; 2 ] and clients = [ 3; 4 ] in
      let inst = factory net ~replicas ~clients in
      List.iter
        (fun client ->
          let rec go i =
            if i < 15 then
              inst.Core.Technique.submit ~client
                (Store.Operation.request ~client
                   [ Store.Operation.Incr (Printf.sprintf "k%d" i, 1) ])
                (fun _ -> go (i + 1))
          in
          go 0)
        clients;
      ignore (Engine.run ~until:(Simtime.of_sec 60.) engine);
      (* Span durations, not reverse-engineered mark gaps: each phase
         span's length is exactly the time until the next phase opened. *)
      let spans = inst.Core.Technique.spans in
      Core.Phase_span.finalize spans ~at:(Engine.now engine);
      let sums = Hashtbl.create 8 in
      let counts = Hashtbl.create 8 in
      let add key v =
        Hashtbl.replace sums key (v +. Option.value ~default:0. (Hashtbl.find_opt sums key));
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      in
      List.iter
        (fun rid ->
          if Core.Phase_span.responded spans ~rid then begin
            let ps = Core.Phase_span.phase_spans spans ~rid in
            let start_of p =
              List.find_opt (fun (q, _) -> Core.Phase.equal p q) ps
              |> Option.map (fun (_, s) -> s.Sim.Span.start)
            in
            let re = start_of Core.Phase.Request in
            let fin = start_of Core.Phase.Response in
            (match (re, fin) with
            | Some a, Some b when Simtime.(b >= a) ->
                add "total" (Simtime.to_ms (Simtime.sub b a))
            | _ -> ());
            List.iter
              (fun (p, s) ->
                match p with
                | Core.Phase.Response -> ()
                | _ -> (
                    let post_end =
                      match fin with
                      | Some e -> Simtime.(s.Sim.Span.start >= e)
                      | None -> false
                    in
                    match (post_end, s.Sim.Span.stop, fin) with
                    | true, Some stop, Some e ->
                        (* Activity after END: lazy propagation, or slow
                           replicas finishing — the client never waits. *)
                        add "tail" (Simtime.to_ms (Simtime.sub stop e))
                    | false, _, _ ->
                        add (Core.Phase.code p)
                          (Option.value ~default:0. (Sim.Span.duration_ms s))
                    | _ -> ()))
              ps
          end)
        (Core.Phase_span.rids spans);
      let mean_v key =
        match (Hashtbl.find_opt sums key, Hashtbl.find_opt counts key) with
        | Some s, Some c when c > 0 -> Some (s /. float_of_int c)
        | _ -> None
      in
      let mean key =
        match mean_v key with
        | Some m -> Printf.sprintf "%.2f" m
        | None -> "-"
      in
      List.iter
        (fun key ->
          match mean_v key with
          | Some m ->
              Workload.Bench_out.add out ~metric:"phase_mean" ~technique:name
                ~unit_:"ms"
                ~params:[ ("phase", key) ]
                m
          | None -> ())
        [ "RE"; "SC"; "EX"; "AC"; "total"; "tail" ];
      Fmt.pr "%-18s %10s %10s %10s %10s %10s %10s@." name (mean "RE")
        (mean "SC") (mean "EX") (mean "AC") (mean "total") (mean "tail"))
    techniques;
  ignore (Workload.Bench_out.write out);
  Fmt.pr
    "@.Reading: the functional model's phases as a latency budget, read@.\
     off each transaction's span tree. The tail column is span activity@.\
     after END — lazy propagation (AC after END) or slow replicas the@.\
     client never waits for.@."


(* --- perf8: response time through a crash/recovery window -------------- *)

let registry_factory name =
  match Protocols.Registry.find name with
  | Some entry -> Protocols.Registry.default_factory entry
  | None -> invalid_arg name

let crash_recovery_windows () =
  section
    "perf8 — Failure assumptions: response time (ms, mean) before / during \
     / after a crash-recovery window (replica 0 down 100..250ms, n=3, 2 \
     clients, updates)";
  (* Default (non-passthrough) stacks: failure handling needs the stubborn
     channels, so wire traffic is not the measured quantity here. *)
  let crash = Simtime.of_ms 100 and recover = Simtime.of_ms 250 in
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 1.0;
      txns_per_client = 50;
      think_time = Simtime.of_ms 2;
    }
  in
  let out = bench_out "perf8" in
  Fmt.pr "%-18s %10s %10s %10s %9s %12s@." "technique" "before" "during"
    "after" "resubmit" "max gap (ms)";
  List.iter
    (fun name ->
      let factory = registry_factory name in
      let result, inst =
        Workload.Runner.run_with_instance ~n_clients:2 ~spec
          ~failures:[ Workload.Runner.crash_recover ~at:crash ~recover_at:recover 0 ]
          ~deadline:(Simtime.of_sec 300.) factory
      in
      (* Bucket each answered transaction by its response instant: the
         span tree records absolute times, so the crash window is visible
         directly rather than only as a global mean. *)
      let spans = inst.Core.Technique.spans in
      let buckets = [| ref []; ref []; ref [] |] in
      List.iter
        (fun rid ->
          if Core.Phase_span.responded spans ~rid then
            match Core.Phase_span.phase_spans spans ~rid with
            | [] -> ()
            | ((_, first) :: _ : (Core.Phase.t * Span.span) list) as ps -> (
                match
                  List.find_opt
                    (fun ((p, _) : Core.Phase.t * Span.span) ->
                      p = Core.Phase.Response)
                    ps
                with
                | None -> ()
                | Some (_, resp) ->
                    let lat =
                      Simtime.to_ms
                        (Simtime.sub resp.Span.start first.Span.start)
                    in
                    let b =
                      if Simtime.(resp.Span.start < crash) then 0
                      else if Simtime.(resp.Span.start < recover) then 1
                      else 2
                    in
                    buckets.(b) := lat :: !(buckets.(b))))
        (Core.Phase_span.rids spans);
      let cell b =
        match !(buckets.(b)) with
        | [] -> "-"
        | ls ->
            Printf.sprintf "%.1f (%d)"
              (List.fold_left ( +. ) 0. ls /. float_of_int (List.length ls))
              (List.length ls)
      in
      List.iteri
        (fun b window ->
          match !(buckets.(b)) with
          | [] -> ()
          | ls ->
              Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
                ~unit_:"ms"
                ~params:[ ("window", window) ]
                (List.fold_left ( +. ) 0. ls /. float_of_int (List.length ls)))
        [ "before"; "during"; "after" ];
      Workload.Bench_out.add out ~metric:"resubmissions" ~technique:name
        ~unit_:"count"
        (float_of_int result.Workload.Runner.resubmissions);
      Fmt.pr "%-18s %10s %10s %10s %9d %12.1f@." name (cell 0) (cell 1)
        (cell 2) result.Workload.Runner.resubmissions
        (Simtime.to_ms result.Workload.Runner.max_response_gap))
    [
      "active";
      "passive";
      "semi-passive";
      "eager-primary";
      "eager-ue-locking";
      "lazy-ue";
      "certification";
    ];
  Fmt.pr
    "@.Reading: group-communication techniques mask the crash (during ~=@.\
     before, no resubmissions); primary-copy techniques pay a failover@.\
     spike (during >> before) and client resubmissions; after recovery the@.\
     rejoined replica serves again and latency returns to the baseline.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf9: abort/block rates vs loss and partition duration ------------ *)

let loss_and_partition_rates () =
  section
    "perf9 — Failure assumptions: abort / blocked rates vs message-loss \
     probability and vs partition duration (n=3, 2 clients, updates)";
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 1.0;
      txns_per_client = 25;
      think_time = Simtime.of_ms 2;
    }
  in
  let out = bench_out "perf9" in
  let names =
    [ "active"; "eager-primary"; "eager-ue-locking"; "lazy-ue"; "certification" ]
  in
  let cell (result : Workload.Runner.result) =
    Printf.sprintf "%.0f%%ab %dblk" (abort_pct result)
      result.Workload.Runner.unanswered
  in
  let record ~name ~params result =
    Workload.Bench_out.add out ~metric:"abort_pct" ~technique:name ~unit_:"%"
      ~params (abort_pct result);
    Workload.Bench_out.add out ~metric:"blocked" ~technique:name ~unit_:"txns"
      ~params
      (float_of_int result.Workload.Runner.unanswered)
  in
  let probabilities = [ 0.0; 0.02; 0.05; 0.10 ] in
  Fmt.pr "%-18s" "loss probability";
  List.iter (fun p -> Fmt.pr "%16s" (Printf.sprintf "p=%.2f" p)) probabilities;
  Fmt.pr "@.";
  List.iter
    (fun name ->
      let factory = registry_factory name in
      Fmt.pr "%-18s" name;
      List.iter
        (fun p ->
          let result =
            Workload.Runner.run ~n_clients:2 ~spec
              ~tune:(fun net ~replicas:_ ~clients:_ ->
                Sim.Network.set_drop_probability net p)
              ~deadline:(Simtime.of_sec 300.) factory
          in
          record ~name ~params:[ ("loss_p", Printf.sprintf "%.2f" p) ] result;
          Fmt.pr "%16s" (cell result))
        probabilities;
      Fmt.pr "@.")
    names;
  let durations_ms = [ 100; 300; 600 ] in
  Fmt.pr "@.%-18s" "partition of r2";
  List.iter (fun d -> Fmt.pr "%16s" (Printf.sprintf "%dms" d)) durations_ms;
  Fmt.pr "@.";
  List.iter
    (fun name ->
      let factory = registry_factory name in
      Fmt.pr "%-18s" name;
      List.iter
        (fun d ->
          let result =
            Workload.Runner.run ~n_clients:2 ~spec
              ~partitions:
                [
                  {
                    Workload.Runner.at = Simtime.of_ms 50;
                    group = [ 2 ];
                    heal_at = Simtime.of_ms (50 + d);
                  };
                ]
              ~deadline:(Simtime.of_sec 300.) factory
          in
          record ~name
            ~params:[ ("partition_ms", string_of_int d) ]
            result;
          Fmt.pr "%16s" (cell result))
        durations_ms;
      Fmt.pr "@.")
    names;
  Fmt.pr
    "@.Reading: loss is absorbed by retransmission everywhere (aborts only@.\
     from lock timeouts under delay); partitions price the strategies@.\
     apart — 2PC techniques may block or abort while the majority side of@.\
     a group-communication technique keeps committing.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf10: contention under open-loop load ---------------------------- *)

let contention () =
  section
    "perf10 — Contention under open-loop (Poisson) load: abort rate and \
     latency vs offered load, hot keyspace (n=3, 4 clients)";
  let out = bench_out "perf10" in
  let rates = [ 50.; 150.; 400. ] in
  Fmt.pr "%-18s" "technique";
  List.iter
    (fun r -> Fmt.pr "%22s" (Printf.sprintf "%.0f txn/s/client" r))
    rates;
  Fmt.pr "@.";
  List.iter
    (fun name ->
      let factory = technique name in
      Fmt.pr "%-18s" name;
      List.iter
        (fun rate ->
          let spec =
            {
              Workload.Spec.default with
              update_ratio = 1.0;
              txns_per_client = 60;
              n_keys = 10;
              key_skew = 0.95;
            }
          in
          let result =
            Workload.Runner.run ~n_clients:4 ~spec ~arrival:(`Poisson rate)
              factory
          in
          let params = [ ("rate", Printf.sprintf "%.0f" rate) ] in
          Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
            ~unit_:"ms" ~params
            result.Workload.Runner.latency_ms.Workload.Stats.mean;
          Workload.Bench_out.add out ~metric:"abort_pct" ~technique:name
            ~unit_:"%" ~params (abort_pct result);
          Fmt.pr "%22s"
            (Printf.sprintf "%.1fms %.0f%%ab"
               result.Workload.Runner.latency_ms.Workload.Stats.mean
               (abort_pct result)))
        rates;
      Fmt.pr "@.")
    [ "eager-ue-locking"; "certification"; "eager-ue-abcast"; "lazy-ue" ];
  Fmt.pr
    "@.Reading: open-loop load piles conflicting transactions up: locking@.\
     queues (latency grows) while certification aborts (optimism priced);@.\
     ordered execution (eager-ue-abcast) and lazy commits stay flat.@.";
  ignore (Workload.Bench_out.write out)


(* --- perf11: partitions ------------------------------------------------- *)

let partitions () =
  section
    "perf11 — Partition tolerance: replica 2 isolated from t=50ms to \
     t=600ms (consensus-based ordering engines)";
  (* Factories on the consensus-based engine where the ordering matters:
     the sequencer engine assumes accurate detection and is not safe under
     the wrong suspicions a partition causes (see Abcast_seq). *)
  let part_techniques =
    [
      ( "active (CT)",
        fun net ~replicas ~clients ->
          Protocols.Active.create net ~replicas ~clients
            ~config:
              {
                Protocols.Active.default_config with
                abcast_impl = Group.Abcast.Consensus_based;
                passthrough = true;
              }
            () );
      ( "passive",
        fun net ~replicas ~clients ->
          Protocols.Passive.create net ~replicas ~clients
            ~config:
              { Protocols.Passive.default_config with passthrough = true }
            () );
      ( "eager-ue-abcast(CT)",
        fun net ~replicas ~clients ->
          Protocols.Eager_ue_abcast.create net ~replicas ~clients
            ~config:
              {
                Protocols.Eager_ue_abcast.default_config with
                abcast_impl = Group.Abcast.Consensus_based;
                passthrough = true;
              }
            () );
      ( "lazy-ue (CT)",
        fun net ~replicas ~clients ->
          Protocols.Lazy_ue.create net ~replicas ~clients
            ~config:
              {
                Protocols.Lazy_ue.default_config with
                abcast_impl = Group.Abcast.Consensus_based;
                passthrough = true;
              }
            () );
    ]
  in
  let out = bench_out "perf11" in
  Fmt.pr "%-22s %12s %14s %12s %12s@." "technique" "committed" "max gap (ms)"
    "converged" "1SR";
  List.iter
    (fun (name, factory) ->
      let spec =
        {
          Workload.Spec.default with
          update_ratio = 1.0;
          txns_per_client = 30;
          think_time = Simtime.of_ms 4;
        }
      in
      let result =
        Workload.Runner.run ~n_clients:2 ~spec
          ~partitions:
            [
              {
                Workload.Runner.at = Simtime.of_ms 50;
                group = [ 2 ];
                heal_at = Simtime.of_ms 600;
              };
            ]
          ~deadline:(Simtime.of_sec 300.) factory
      in
      Workload.Bench_out.add out ~metric:"committed" ~technique:name
        ~unit_:"txns"
        (float_of_int result.Workload.Runner.committed);
      Workload.Bench_out.add out ~metric:"max_response_gap" ~technique:name
        ~unit_:"ms"
        (Simtime.to_ms result.Workload.Runner.max_response_gap);
      Fmt.pr "%-22s %12d %14.1f %12b %12b@." name
        result.Workload.Runner.committed
        (Simtime.to_ms result.Workload.Runner.max_response_gap)
        result.Workload.Runner.converged result.Workload.Runner.serializable)
    part_techniques;
  Fmt.pr
    "@.Reading: majority sides keep committing through the partition;@.\
     the isolated replica catches up after the heal (progress gossip /@.\
     rejoin); lazy-ue never stalls at all and reconciles afterwards.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf12: tail latency ----------------------------------------------- *)

let tail_latency () =
  section
    "perf12 — Tail latency (ms): mean vs p95/p99 under contention (n=3, \
     100% updates, skewed keys)";
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 1.0;
      txns_per_client = 60;
      n_keys = 40;
      key_skew = 0.9;
    }
  in
  let out = bench_out "perf12" in
  Fmt.pr "%-18s %10s %10s %10s %10s@." "technique" "mean" "p95" "p99" "max";
  List.iter
    (fun (name, factory) ->
      let result = Workload.Runner.run ~n_clients:4 ~spec factory in
      let l = result.Workload.Runner.latency_ms in
      List.iter
        (fun (metric, v) ->
          Workload.Bench_out.add out ~metric ~technique:name ~unit_:"ms" v)
        [
          ("latency_mean", l.Workload.Stats.mean);
          ("latency_p95", l.Workload.Stats.p95);
          ("latency_p99", l.Workload.Stats.p99);
          ("latency_max", l.Workload.Stats.max);
        ];
      Fmt.pr "%-18s %10.2f %10.2f %10.2f %10.2f@." name l.Workload.Stats.mean
        l.Workload.Stats.p95 l.Workload.Stats.p99 l.Workload.Stats.max)
    techniques;
  Fmt.pr
    "@.Reading: the mean hides the queueing the paper's step counts imply:@.\
     deep critical paths (locking's per-operation rounds) stretch the tail@.\
     far more than the average, while lazy replies stay tight at p99.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf13: resource-gauge trajectories vs offered load ----------------- *)

let series_stat ~f name (result : Workload.Runner.result) =
  result.Workload.Runner.series
  |> List.filter (fun (s : Sim.Timeseries.series) -> s.name = name)
  |> List.map f
  |> List.fold_left Stdlib.max 0.

let series_max = series_stat ~f:Sim.Timeseries.max_value

let resource_trajectory () =
  section
    "perf13 — Resource trajectories under open-loop load: peak queue depth \
     and lock waiters vs offered rate (n=3, 4 clients, hot keys, sampled \
     every 5ms)";
  let out = bench_out "perf13" in
  let rates = [ 50.; 150.; 400. ] in
  let queue_names =
    [ "abcast_pending"; "abcast_undelivered"; "vscast_buffered"; "rchan_unacked" ]
  in
  Fmt.pr "%-18s %8s %10s %8s %10s %10s %8s@." "technique" "rate" "lat(ms)"
    "abort%" "waiters^" "queue^" "txns^";
  List.iter
    (fun name ->
      let factory = registry_factory name in
      List.iter
        (fun rate ->
          let spec =
            {
              Workload.Spec.default with
              update_ratio = 1.0;
              txns_per_client = 60;
              n_keys = 10;
              key_skew = 0.95;
            }
          in
          let result =
            Workload.Runner.run ~n_clients:4 ~spec ~arrival:(`Poisson rate)
              ~sample:(Simtime.of_ms 5) ~deadline:(Simtime.of_sec 8.) factory
          in
          let waiters = series_max "lock_waiters" result in
          let queue =
            List.fold_left
              (fun acc n -> Stdlib.max acc (series_max n result))
              0. queue_names
          in
          let active = series_max "active_txns" result in
          let params = [ ("rate", Printf.sprintf "%.0f" rate) ] in
          Workload.Bench_out.add out ~metric:"latency_mean" ~technique:name
            ~unit_:"ms" ~params
            result.Workload.Runner.latency_ms.Workload.Stats.mean;
          Workload.Bench_out.add out ~metric:"abort_pct" ~technique:name
            ~unit_:"%" ~params (abort_pct result);
          Workload.Bench_out.add out ~metric:"lock_waiters_max" ~technique:name
            ~unit_:"txns" ~params waiters;
          Workload.Bench_out.add out ~metric:"queue_depth_max" ~technique:name
            ~unit_:"msgs" ~params queue;
          Workload.Bench_out.add out ~metric:"active_txns_max" ~technique:name
            ~unit_:"txns" ~params active;
          Fmt.pr "%-18s %8.0f %10.1f %8.0f %10.0f %10.0f %8.0f@." name rate
            result.Workload.Runner.latency_ms.Workload.Stats.mean
            (abort_pct result) waiters queue active)
        rates)
    [ "eager-ue-locking"; "certification"; "eager-ue-abcast"; "lazy-ue" ];
  Fmt.pr
    "@.Reading: the gauges localise the queueing perf10 only infers from@.\
     latency: locking's backlog shows up as lock waiters (a convoy on the@.\
     hot keys), certification's as aborts with zero waiters, and the@.\
     ordered-execution techniques as group-stack queue depth.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf14: sequencer batching — batch window vs offered load --------- *)

(* The batching trade-off: a wider sequencer batch window amortises one
   ordering round (one Order + one all-to-all ack wave) over every
   request that arrives inside the window, cutting wire messages per
   transaction at saturating load, at the price of up to one window of
   added latency per request. batch_window=0 is the unbatched §5
   protocol. *)
let batching () =
  section
    "perf14 — Sequencer batching: wire messages per txn and mean latency \
     vs batch window under open-loop (Poisson) load (n=3, 4 clients, 100% \
     updates, passthrough)";
  let windows_ms = [ 0; 1; 5; 20 ] in
  let rates = [ 100.; 1000. ] in
  let out = bench_out ~config:[ ("passthrough", "true") ] "perf14" in
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 1.0;
      txns_per_client = 60;
      n_keys = 200;
    }
  in
  (* msgs/txn at (technique, window, rate), for the closing verdict *)
  let recorded = Hashtbl.create 16 in
  Fmt.pr "%-18s %10s %8s %10s %10s %8s@." "technique" "window" "rate"
    "msgs/txn" "lat(ms)" "abort%";
  List.iter
    (fun name ->
      let entry = Option.get (Protocols.Registry.find name) in
      List.iter
        (fun w ->
          List.iter
            (fun rate ->
              let factory =
                Protocols.Registry.configure_exn entry
                  [
                    ("passthrough", "true");
                    ("batch_window", Printf.sprintf "%dms" w);
                  ]
              in
              let builder =
                Workload.Builder.make ~clients:4 ~spec
                  ~arrival:(`Poisson rate) ~deadline:(Simtime.of_sec 8.) ()
              in
              let result = Workload.Builder.run builder factory in
              let params =
                [
                  ("batch_window_ms", string_of_int w);
                  ("rate", Printf.sprintf "%.0f" rate);
                ]
              in
              Hashtbl.replace recorded (name, w, rate)
                result.Workload.Runner.messages_per_txn;
              Workload.Bench_out.add out ~metric:"messages_per_txn"
                ~technique:name ~unit_:"msgs" ~params
                result.Workload.Runner.messages_per_txn;
              Workload.Bench_out.add out ~metric:"latency_mean"
                ~technique:name ~unit_:"ms" ~params
                result.Workload.Runner.latency_ms.Workload.Stats.mean;
              Workload.Bench_out.add out ~metric:"abort_pct" ~technique:name
                ~unit_:"%" ~params (abort_pct result);
              Fmt.pr "%-18s %8dms %8.0f %10.1f %10.1f %8.0f@." name w rate
                result.Workload.Runner.messages_per_txn
                result.Workload.Runner.latency_ms.Workload.Stats.mean
                (abort_pct result))
            rates)
        windows_ms)
    [ "active"; "certification" ];
  let saturating = List.fold_left Float.max 0. rates in
  List.iter
    (fun name ->
      match
        ( Hashtbl.find_opt recorded (name, 0, saturating),
          Hashtbl.find_opt recorded (name, 5, saturating) )
      with
      | Some unbatched, Some batched ->
          Fmt.pr
            "@.verdict: %s at %.0f/s: %.1f msgs/txn unbatched vs %.1f with \
             a 5ms window (%s)@."
            name saturating unbatched batched
            (if batched < unbatched then "batching wins"
             else "batching does not pay here")
      | _ -> ())
    [ "active"; "certification" ];
  Fmt.pr
    "@.Reading: at saturating load many requests land inside one window,@.\
     so the ordering round (Order + all-to-all acks) is paid once per@.\
     batch instead of once per transaction; at low load the window mostly@.\
     holds a single request and only adds its width to the latency.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf15: simulator self-throughput (meta-benchmark) ----------------- *)

(* The only perf* experiment whose subject is the simulator itself: a
   large run (>= 1e5 transactions by default, n=32) with the engine
   profiler attached, once with tracing off (the headline events/s and
   txns/s the scale roadmap depends on) and once with tracing on (the
   measured cost of the observability stack — the lazy-span gate's
   before/after). Post-run oracles are skipped ([analyze:false]): at this
   size their cost would dwarf the engine's. The tracing-on leg runs a
   fraction of the transactions — span memory is O(txns) — and the
   comparison uses events/s, which is size-independent.

   PERF15_TXNS overrides the total transaction count (CI smoke runs use
   a small value; the floor gate in ci/check.sh re-runs bench-check
   against whatever this wrote). *)
let simulator_throughput () =
  let total =
    match Option.bind (Sys.getenv_opt "PERF15_TXNS") int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> 100_000
  in
  let n = 32 and clients = 8 in
  let technique_name = "lazy-primary" in
  section
    (Printf.sprintf
       "perf15 — Simulator self-throughput: events/s and txns/s of wall \
        time, tracing off vs on (n=%d, %s, 10%% updates, %d txns)"
       n technique_name total);
  let spec txns =
    {
      Workload.Spec.default with
      update_ratio = 0.1;
      txns_per_client = txns;
      n_keys = 1_000;
    }
  in
  let leg ~tracing ~txns =
    let profiler = Sim.Profiler.create () in
    let builder =
      Workload.Builder.make ~seed:11 ~replicas:n ~clients ~spec:(spec txns)
        ~profiler ~tracing ~analyze:false
        ~deadline:(Simtime.of_sec 3600.)
        ()
    in
    let result = Workload.Builder.run builder (technique technique_name) in
    (Sim.Profiler.report profiler, result)
  in
  let out =
    Workload.Bench_out.create
      ~config:[ ("update_ratio", "0.1"); ("passthrough", "true") ]
      ~bench:"perf15" ~seed:11 ~n_replicas:n ()
  in
  Fmt.pr "%-10s %10s %10s %12s %12s %14s %10s@." "tracing" "txns" "events"
    "events/s" "txns/s" "heap peak (w)" "spans";
  let record label (report : Sim.Profiler.report)
      (result : Workload.Runner.result) txns =
    let wall = result.Workload.Runner.wall_s in
    let txps =
      if wall > 0. then float_of_int result.Workload.Runner.committed /. wall
      else 0.
    in
    let params = [ ("tracing", label); ("txns", string_of_int txns) ] in
    Workload.Bench_out.add out ~metric:"events_per_sec"
      ~technique:technique_name ~unit_:"events/s" ~params
      report.Sim.Profiler.p_events_per_sec;
    Workload.Bench_out.add out ~metric:"txns_per_sec"
      ~technique:technique_name ~unit_:"txn/s" ~params txps;
    Workload.Bench_out.add out ~metric:"peak_heap_words"
      ~technique:technique_name ~unit_:"words" ~params
      (float_of_int report.Sim.Profiler.p_heap_peak_words);
    Workload.Bench_out.add out ~metric:"events" ~technique:technique_name
      ~unit_:"events" ~params
      (float_of_int report.Sim.Profiler.p_events);
    Workload.Bench_out.add out ~metric:"spans_created"
      ~technique:technique_name ~unit_:"spans" ~params
      (float_of_int report.Sim.Profiler.p_spans_created);
    List.iter
      (fun (r : Sim.Profiler.row) ->
        Workload.Bench_out.add out ~metric:"bucket_wall_share"
          ~technique:technique_name ~unit_:"share"
          ~params:(params @ [ ("label", r.r_label) ])
          r.r_wall_share)
      report.Sim.Profiler.p_buckets;
    Fmt.pr "%-10s %10d %10d %12.0f %12.0f %14d %10d@." label
      (result.Workload.Runner.committed + result.Workload.Runner.aborted)
      report.Sim.Profiler.p_events report.Sim.Profiler.p_events_per_sec txps
      report.Sim.Profiler.p_heap_peak_words
      report.Sim.Profiler.p_spans_created;
    txps
  in
  let txns_off = max 1 (total / clients) in
  let txns_on = max 1 (total / clients / 20) in
  let report_off, result_off = leg ~tracing:false ~txns:txns_off in
  let report_on, result_on = leg ~tracing:true ~txns:txns_on in
  ignore (record "off" report_off result_off (txns_off * clients));
  ignore (record "on" report_on result_on (txns_on * clients));
  let evps_off = report_off.Sim.Profiler.p_events_per_sec in
  let evps_on = report_on.Sim.Profiler.p_events_per_sec in
  let overhead_pct =
    if evps_on > 0. then 100. *. (evps_off /. evps_on -. 1.) else 0.
  in
  Workload.Bench_out.add out ~metric:"tracing_overhead_pct"
    ~technique:technique_name ~unit_:"%" ~params:[] overhead_pct;
  Fmt.pr
    "@.verdict: tracing off runs %.0f%% faster per event than tracing on@."
    overhead_pct;
  Fmt.pr "top buckets (tracing off, by self time):@.";
  List.iteri
    (fun i r -> if i < 5 then Fmt.pr "  %a@." Sim.Profiler.pp_row r)
    (List.sort
       (fun (a : Sim.Profiler.row) b -> compare b.r_wall_ms a.r_wall_ms)
       report_off.Sim.Profiler.p_buckets);
  Fmt.pr
    "@.Reading: with the tracing gate off, span records are never@.\
     materialised (Network.set_tracing short-circuits message spans and@.\
     phase marks), so the off-leg's events/s is the engine's raw speed@.\
     and the on/off gap is the full, measured price of the observability@.\
     stack at this workload.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf16: sharded replication groups -------------------------------- *)

(* Partial replication's scaling claim (Sutra & Shapiro's "genuine
   partial replication" criterion): the coordination cost of a
   transaction should depend on the replicas that hold its data, not on
   the total cluster size.

   Part A measures it directly: the causal message count of one
   single-shard transaction (the [replisim explain] measurement — probe
   traffic only, background heartbeats excluded) at n = 16/32/64 with
   the shard count scaled to hold the group size at 4 replicas. Sharded,
   the count must be flat across n; unsharded (shards=1, the same §5
   protocol over the full cluster) it grows with n.

   Part B prices the other half of the bargain: a fixed cluster
   (n = 32, 8 groups of 4) under a rising cross-shard ratio, where every
   crossing transaction adds a 2PC round across the concerned groups
   plus one sub-transaction per group touched.

   PERF16_TXNS overrides Part B's per-client transaction count (CI
   smoke). *)
let sharding () =
  section
    "perf16 — Sharded replication groups: single-shard message cost vs \
     cluster size (group size 4), and throughput/p95 vs cross-shard ratio \
     (n=32, 8 shards, 2 ops/txn, passthrough)";
  let out =
    Workload.Bench_out.create
      ~config:[ ("passthrough", "true") ]
      ~bench:"perf16" ~seed:11 ~n_replicas:32 ()
  in
  let group_size = 4 in
  let ns = [ 16; 32; 64 ] in
  let part_a_techniques = [ "active"; "certification"; "eager-primary" ] in
  let probe_msgs entry ~n ~shards =
    let factory =
      Protocols.Registry.configure_exn entry
        [ ("passthrough", "true"); ("shards", string_of_int shards) ]
    in
    let p = Workload.Builder.probe ~seed:7 ~n factory in
    let _, _, s = Workload.Builder.probe_summary p in
    s.Sim.Msg_dag.messages
  in
  Fmt.pr "single-shard txn, causal messages (sharded: group size %d | \
          unsharded: full cluster)@."
    group_size;
  Fmt.pr "%-18s" "technique";
  List.iter (fun n -> Fmt.pr "%14s" (Printf.sprintf "n=%d" n)) ns;
  Fmt.pr "@.";
  let flat =
    List.for_all
      (fun name ->
        let entry = Option.get (Protocols.Registry.find name) in
        Fmt.pr "%-18s" name;
        let sharded =
          List.map
            (fun n ->
              let shards = n / group_size in
              let m_sharded = probe_msgs entry ~n ~shards in
              let m_full = probe_msgs entry ~n ~shards:1 in
              let params =
                [ ("n", string_of_int n); ("shards", string_of_int shards) ]
              in
              Workload.Bench_out.add out ~metric:"probe_messages"
                ~technique:name ~unit_:"msgs" ~params
                (float_of_int m_sharded);
              Workload.Bench_out.add out ~metric:"probe_messages"
                ~technique:name ~unit_:"msgs"
                ~params:[ ("n", string_of_int n); ("shards", "1") ]
                (float_of_int m_full);
              Fmt.pr "%8d |%4d" m_sharded m_full;
              m_sharded)
            ns
        in
        Fmt.pr "@.";
        match sharded with
        | first :: rest -> List.for_all (Int.equal first) rest
        | [] -> true)
      part_a_techniques
  in
  Fmt.pr
    "@.verdict: single-shard message cost %s of cluster size at fixed \
     group size@."
    (if flat then "is independent" else "DEPENDS — regression");
  (* Machine-checkable form of the verdict: ci/check.sh floor-gates
     probe_flat at 1. *)
  Workload.Bench_out.add out ~metric:"probe_flat" ~technique:"all"
    ~unit_:"bool" (if flat then 1. else 0.);
  (* Part B: cross-shard ratio sweep on a fixed sharded cluster. *)
  let txns =
    match Option.bind (Sys.getenv_opt "PERF16_TXNS") int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> 40
  in
  let n = 32 and shards = 8 and clients = 4 in
  let entry = Option.get (Protocols.Registry.find "active") in
  let factory =
    Protocols.Registry.configure_exn entry
      [ ("passthrough", "true"); ("shards", string_of_int shards) ]
  in
  Fmt.pr "@.%-10s %10s %12s %10s %10s %10s %12s@." "cross" "committed"
    "msgs/txn" "tput/s" "p95(ms)" "p99(ms)" "2PC commits";
  List.iter
    (fun cross ->
      let spec =
        Workload.Builder.spec ~updates:0.5 ~ops:2 ~txns ~keys:200 ~shards
          ~cross ()
      in
      let builder =
        Workload.Builder.make ~seed:11 ~replicas:n ~clients ~spec ()
      in
      let result = Workload.Builder.run builder factory in
      let cross_commits =
        Option.value ~default:0
          (Sim.Metrics.counter_value result.Workload.Runner.metrics
             "cross_shard_commit_total")
      in
      let params = [ ("cross", Printf.sprintf "%.2f" cross) ] in
      Workload.Bench_out.add out ~metric:"throughput" ~technique:"active"
        ~unit_:"txn/s" ~params result.Workload.Runner.throughput;
      Workload.Bench_out.add out ~metric:"latency_p95" ~technique:"active"
        ~unit_:"ms" ~params
        result.Workload.Runner.latency_ms.Workload.Stats.p95;
      Workload.Bench_out.add out ~metric:"latency_p99" ~technique:"active"
        ~unit_:"ms" ~params
        result.Workload.Runner.latency_ms.Workload.Stats.p99;
      Workload.Bench_out.add out ~metric:"messages_per_txn"
        ~technique:"active" ~unit_:"msgs" ~params
        result.Workload.Runner.messages_per_txn;
      Workload.Bench_out.add out ~metric:"cross_commits" ~technique:"active"
        ~unit_:"txns" ~params (float_of_int cross_commits);
      Fmt.pr "%-10.2f %10d %12.1f %10.1f %10.2f %10.2f %12d@." cross
        result.Workload.Runner.committed
        result.Workload.Runner.messages_per_txn
        result.Workload.Runner.throughput
        result.Workload.Runner.latency_ms.Workload.Stats.p95
        result.Workload.Runner.latency_ms.Workload.Stats.p99 cross_commits)
    [ 0.0; 0.1; 0.3; 1.0 ];
  Fmt.pr
    "@.Reading: Part A is the partial-replication bargain — a \
     transaction@.\
     confined to one group pays the §5 protocol at the group size, \
     however@.\
     large the cluster grows. Part B is its price: every cross-shard@.\
     transaction adds a 2PC round over the concerned groups' delegates \
     and@.\
     splits into one sub-transaction per group, so message cost and tail@.\
     latency climb with the crossing ratio while single-shard traffic is@.\
     untouched.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf17: measured consistency across the taxonomy ---------------- *)

(* The audit layer's numbers as a benchmark: visibility latency (how
   long a committed write stays invisible at other replicas), the
   post-commit staleness window, and session-guarantee violation rates,
   for every technique under open-loop load — the measured form of the
   paper's eager/lazy inconsistency-window claim. A sharded lazy leg
   adds the cross-shard snapshot-skew count.

   PERF17_TXNS overrides the per-client transaction count (CI smoke). *)
let consistency_audit () =
  section
    "perf17 — Measured consistency: visibility latency, staleness windows \
     and session-guarantee violations (all techniques × Poisson load; \
     sharded lazy leg)";
  let txns =
    match Option.bind (Sys.getenv_opt "PERF17_TXNS") int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> 40
  in
  let out =
    Workload.Bench_out.create
      ~config:[ ("passthrough", "true") ]
      ~bench:"perf17" ~seed:11 ~n_replicas:3 ()
  in
  let all_drained = ref true in
  let lazy_positive = ref true in
  let audited ?(n = 3) ?(clients = 4) ?(shards = 1) ?(cross = 0.)
      ?(arrival = `Closed) (entry : Protocols.Registry.entry) =
    let factory =
      Protocols.Registry.configure_exn entry
        ([ ("passthrough", "true") ]
        @ if shards > 1 then [ ("shards", string_of_int shards) ] else [])
    in
    let spec =
      Workload.Builder.spec ~updates:0.5 ~ops:(if shards > 1 then 2 else 1)
        ~txns ~keys:100 ~shards ~cross ()
    in
    let builder =
      Workload.Builder.make ~seed:11 ~replicas:n ~clients ~spec ~arrival
        ~sample:(Simtime.of_ms 5) ~audit:true ()
    in
    let result = Workload.Builder.run builder factory in
    (result, Option.get result.Workload.Runner.audit)
  in
  let rates = [ 50.; 200. ] in
  Fmt.pr "%-18s %-6s" "technique" "prop";
  List.iter
    (fun r ->
      Fmt.pr "%26s"
        (Printf.sprintf "rate=%.0f/s: vis p95|win" r))
    rates;
  Fmt.pr "%18s@." "stale|ryw|mr";
  List.iter
    (fun (entry : Protocols.Registry.entry) ->
      let eager =
        entry.info.Core.Technique.propagation = Core.Technique.Eager
      in
      Fmt.pr "%-18s %-6s" entry.key (if eager then "eager" else "lazy");
      let totals = ref (0, 0, 0) in
      List.iter
        (fun rate ->
          let _, a = audited ~arrival:(`Poisson rate) entry in
          let params =
            [ ("rate", Printf.sprintf "%.0f" rate); ("shards", "1") ]
          in
          let rate_of v =
            if a.Workload.Audit.reads_checked = 0 then 0.
            else float_of_int v /. float_of_int a.Workload.Audit.reads_checked
          in
          Workload.Bench_out.add out ~metric:"visibility_p95_ms"
            ~technique:entry.key ~unit_:"ms" ~params
            a.Workload.Audit.visibility_ms.Workload.Stats.p95;
          Workload.Bench_out.add out ~metric:"visibility_mean_ms"
            ~technique:entry.key ~unit_:"ms" ~params
            a.Workload.Audit.visibility_ms.Workload.Stats.mean;
          Workload.Bench_out.add out ~metric:"post_commit_window_ms"
            ~technique:entry.key ~unit_:"ms" ~params
            a.Workload.Audit.post_commit_max_ms;
          Workload.Bench_out.add out ~metric:"session_window_ms"
            ~technique:entry.key ~unit_:"ms" ~params
            a.Workload.Audit.session_window_max_ms;
          Workload.Bench_out.add out ~metric:"stale_read_rate"
            ~technique:entry.key ~unit_:"frac" ~params
            (rate_of a.Workload.Audit.stale_reads);
          Workload.Bench_out.add out ~metric:"ryw_violation_rate"
            ~technique:entry.key ~unit_:"frac" ~params
            (rate_of a.Workload.Audit.ryw_violations);
          Workload.Bench_out.add out ~metric:"mr_violation_rate"
            ~technique:entry.key ~unit_:"frac" ~params
            (rate_of a.Workload.Audit.mr_violations);
          if not a.Workload.Audit.drained then all_drained := false;
          if (not eager) && a.Workload.Audit.post_commit_max_ms <= 0. then
            lazy_positive := false;
          let s, r, m = !totals in
          totals :=
            ( s + a.Workload.Audit.stale_reads,
              r + a.Workload.Audit.ryw_violations,
              m + a.Workload.Audit.mr_violations );
          Fmt.pr "%16.2f |%7.2f"
            a.Workload.Audit.visibility_ms.Workload.Stats.p95
            a.Workload.Audit.post_commit_max_ms)
        rates;
      let s, r, m = !totals in
      Fmt.pr "%10d |%2d |%2d@." s r m)
    Protocols.Registry.all;
  (* Sharded lazy leg: the skew detector under cross-shard traffic. *)
  let entry = Option.get (Protocols.Registry.find "lazy-primary") in
  let result, a = audited ~n:6 ~shards:2 ~cross:0.3 entry in
  Workload.Bench_out.add out ~metric:"skew_pairs" ~technique:"lazy-primary"
    ~unit_:"pairs"
    ~params:[ ("shards", "2"); ("cross", "0.30") ]
    (float_of_int a.Workload.Audit.skew_pairs);
  Workload.Bench_out.add out ~metric:"cross_txns" ~technique:"lazy-primary"
    ~unit_:"txns"
    ~params:[ ("shards", "2"); ("cross", "0.30") ]
    (float_of_int a.Workload.Audit.cross_txns);
  if not a.Workload.Audit.drained then all_drained := false;
  if a.Workload.Audit.post_commit_max_ms <= 0. then lazy_positive := false;
  Fmt.pr
    "@.sharded lazy leg (lazy-primary, n=6, 2 shards, cross=0.30): %d \
     committed, %d cross-shard txns, %d skew pairs, postcmt %.2f ms@."
    result.Workload.Runner.committed a.Workload.Audit.cross_txns
    a.Workload.Audit.skew_pairs a.Workload.Audit.post_commit_max_ms;
  (* Machine-checkable verdicts, single aggregate rows so the CI floor
     (max-over-rows >= 1) only passes when EVERY run satisfied them. *)
  Workload.Bench_out.add out ~metric:"audit_drained" ~technique:"all"
    ~unit_:"bool"
    (if !all_drained then 1. else 0.);
  Workload.Bench_out.add out ~metric:"lazy_visibility_positive"
    ~technique:"all" ~unit_:"bool"
    (if !lazy_positive then 1. else 0.);
  Fmt.pr
    "@.verdict: every run drained (%s) and every lazy run measured a \
     positive post-commit window (%s)@."
    (if !all_drained then "yes" else "NO — regression")
    (if !lazy_positive then "yes" else "NO — regression");
  Fmt.pr
    "@.Reading: vis p95 is how long a committed write stays invisible at@.\
     the other replicas; win the worst reply-to-last-install gap. Eager@.\
     techniques keep both inside the commit round (sub-ms residue is the@.\
     decision round racing the reply), lazy ones show the propagation@.\
     interval, and only lazy rows post session violations. The sharded@.\
     leg counts readers that caught a cross-shard write half-applied.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf18: Figure-6 quadrant sweep ---------------------------------- *)

(* Gray's two-axis taxonomy as a measured matrix: the four database
   quadrants (eager/lazy × primary/update-everywhere) swept over arrival
   load and zipfian key skew through the same Sweep/Run_record path the
   CLI uses, rendered as the Figure-6 table with real numbers in the
   cells. Aggregate rows (cells, best latency, best throughput, worst
   msgs/txn) give CI a handle on the whole grid; the verdict row checks
   the taxonomy's headline claim — lazy replies before propagation, so
   each lazy quadrant commits faster than its eager column-mate in every
   cell.

   PERF18_TXNS overrides the per-client transaction count (CI smoke). *)
let quadrant_sweep () =
  section
    "perf18 — Figure-6 quadrant sweep: eager/lazy × primary/update- \
     everywhere under arrival load and zipf key skew, one canonical run \
     record per cell";
  let txns =
    match Option.bind (Sys.getenv_opt "PERF18_TXNS") int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> 30
  in
  let out =
    Workload.Bench_out.create ~bench:"perf18" ~seed:11 ~n_replicas:3 ()
  in
  let axes =
    {
      Workload.Sweep.default_axes with
      techniques = [ "eager-primary"; "eager-ue-abcast"; "lazy-primary"; "lazy-ue" ];
      loads = [ 0.; 200. ];
      zipfs = [ 0.; 0.9 ];
    }
  in
  let records =
    List.map
      (fun (c : Workload.Sweep.cell) ->
        let entry = Option.get (Protocols.Registry.find c.technique) in
        let _, factory =
          match Protocols.Registry.configure entry [] with
          | Ok x -> x
          | Error msg -> failwith msg
        in
        let spec =
          Workload.Builder.spec ~keys:100 ~skew:c.zipf ~updates:c.updates
            ~ops:1 ~txns ~shards:1 ~cross:0. ()
        in
        let arrival = Workload.Sweep.arrival_of_cell c in
        let builder =
          Workload.Builder.make ~seed:c.seed ~replicas:3 ~clients:4 ~spec
            ~arrival ~sample:(Simtime.of_ms 5) ~audit:true ()
        in
        let result = Workload.Builder.run builder factory in
        let r =
          Workload.Run_record.normalize
            (Workload.Run_record.of_run ~technique:entry.key ~config:[]
               ~seed:c.seed ~n_replicas:3 ~n_clients:4 ~arrival ~spec result)
        in
        let params =
          [
            ( "rate",
              if c.load > 0. then Printf.sprintf "%.0f" c.load else "closed" );
            ("zipf", Printf.sprintf "%g" c.zipf);
          ]
        in
        Workload.Bench_out.add out ~metric:"latency_p95" ~technique:entry.key
          ~unit_:"ms" ~params r.Workload.Run_record.latency_p95_ms;
        Workload.Bench_out.add out ~metric:"throughput" ~technique:entry.key
          ~unit_:"txn/s" ~params r.Workload.Run_record.throughput;
        Workload.Bench_out.add out ~metric:"msgs_per_txn" ~technique:entry.key
          ~unit_:"msgs" ~params r.Workload.Run_record.msgs_per_txn;
        r)
      (Workload.Sweep.cells axes)
  in
  List.iter
    (fun metric ->
      Fmt.pr "%s@."
        (Workload.Sweep.render_ascii (Workload.Sweep.matrix ~metric records)))
    [ "latency_p95"; "throughput"; "msgs_per_txn" ];
  (* The headline claim, cell by cell: in both the primary-copy and the
     update-everywhere column, the lazy quadrant's p95 stays below its
     eager column-mate's under the same load and skew. *)
  let p95_of technique (c : Workload.Run_record.t) =
    List.find_map
      (fun (r : Workload.Run_record.t) ->
        if
          r.technique = technique
          && r.workload.arrival = c.workload.arrival
          && r.workload.zipf = c.workload.zipf
        then Some r.latency_p95_ms
        else None)
      records
  in
  let lazy_faster = ref true in
  List.iter
    (fun (r : Workload.Run_record.t) ->
      let eager_mate =
        match r.technique with
        | "lazy-primary" -> p95_of "eager-primary" r
        | "lazy-ue" -> p95_of "eager-ue-abcast" r
        | _ -> None
      in
      match eager_mate with
      | Some eager_p95 when r.latency_p95_ms >= eager_p95 ->
          lazy_faster := false
      | _ -> ())
    records;
  let values metric =
    List.filter_map (fun r -> Workload.Run_record.metric r metric) records
  in
  let best_latency =
    List.fold_left Float.min Float.infinity (values "latency_p95")
  in
  let best_throughput = List.fold_left Float.max 0. (values "throughput") in
  let worst_msgs =
    List.fold_left Float.max 0. (values "msgs_per_txn")
  in
  Workload.Bench_out.add out ~metric:"cells" ~technique:"all" ~unit_:"cells"
    (float_of_int (List.length records));
  Workload.Bench_out.add out ~metric:"best_latency_p95" ~technique:"all"
    ~unit_:"ms" best_latency;
  Workload.Bench_out.add out ~metric:"best_throughput" ~technique:"all"
    ~unit_:"txn/s" best_throughput;
  Workload.Bench_out.add out ~metric:"worst_msgs_per_txn" ~technique:"all"
    ~unit_:"msgs" worst_msgs;
  Workload.Bench_out.add out ~metric:"lazy_faster_than_eager" ~technique:"all"
    ~unit_:"bool"
    (if !lazy_faster then 1. else 0.);
  Fmt.pr
    "@.verdict: lazy quadrants reply below their eager column-mates in \
     every cell (%s); %d cells, best p95 %.2f ms, best throughput %.0f \
     txn/s, worst msgs/txn %.1f@."
    (if !lazy_faster then "yes" else "NO — regression")
    (List.length records) best_latency best_throughput worst_msgs;
  Fmt.pr
    "@.Reading: rows are Gray's quadrants (× zipf when it matters),@.\
     columns the arrival loads. Lazy rows commit at local speed and pay@.\
     for it in the perf17 staleness windows; eager rows pay the@.\
     coordination round here instead. Skew moves contention, not the@.\
     propagation cost, so zipf rows only separate under abort-prone@.\
     techniques.@.";
  ignore (Workload.Bench_out.write out)

(* --- perf19: the routed tier — sticky RYW, flash-crowd failover ------- *)

(* The routing-tier study the client refactor exists for, in two parts.
   Part A routes lazy-primary (propagation raised to 20 ms so staleness
   is visible) through the router with stickiness off and on: the audit
   layer must count strictly positive read-your-writes violations for
   the round-robin reads and exactly zero once sessions stick to their
   write replica — and the read p95 shows what that guarantee costs.
   Part B sweeps the four Figure-6 quadrants through a flash crowd
   (load ×4, hotter re-shifted zipf) with a mid-spike partition and a
   crash/recover of replica 0, all behind the router: per-quadrant
   throughput/p95 under the spike say which quadrant survives, and the
   failover counter proves at least one read was answered only because
   the router resent it elsewhere.

   PERF19_TXNS overrides the per-client transaction count (CI smoke). *)
let routed_tier () =
  section
    "perf19 — Routed tier: sticky sessions vs read-your-writes over \
     lazy-primary, and the Figure-6 quadrants through a flash crowd with \
     mid-spike failover";
  let txns =
    match Option.bind (Sys.getenv_opt "PERF19_TXNS") int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> 30
  in
  let out = bench_out "perf19" in
  (* -- part A: sticky on/off over lazy-primary ------------------------- *)
  let lazy_factory =
    Protocols.Registry.configure_exn
      (Option.get (Protocols.Registry.find "lazy-primary"))
      [ ("propagation_delay", "20ms") ]
  in
  let routed_audit ~sticky =
    let spec = Workload.Builder.spec ~updates:0.5 ~txns ~keys:40 () in
    let builder =
      Workload.Builder.make ~seed:11 ~replicas:3 ~clients:4 ~spec ~audit:true
        ~router:
          { Workload.Router.default_config with Workload.Router.sticky }
        ()
    in
    let result = Workload.Builder.run builder lazy_factory in
    ( Option.get result.Workload.Runner.audit,
      Option.get result.Workload.Runner.router,
      result )
  in
  let a_loose, r_loose, res_loose = routed_audit ~sticky:false in
  let a_sticky, r_sticky, res_sticky = routed_audit ~sticky:true in
  let ryw_loose = a_loose.Workload.Audit.ryw_violations in
  let ryw_sticky = a_sticky.Workload.Audit.ryw_violations in
  let read_p95 (r : Workload.Runner.result) =
    r.Workload.Runner.read_latency_ms.Workload.Stats.p95
  in
  Fmt.pr "lazy-primary, propagation 20ms, %d txns/client, routed:@." txns;
  Fmt.pr "  round-robin reads: ryw_violations=%d read_p95=%.3fms (%a)@."
    ryw_loose (read_p95 res_loose) Workload.Router.pp_stats r_loose;
  Fmt.pr "  sticky sessions  : ryw_violations=%d read_p95=%.3fms (%a)@."
    ryw_sticky (read_p95 res_sticky) Workload.Router.pp_stats r_sticky;
  Workload.Bench_out.add out ~metric:"ryw_nonsticky" ~technique:"lazy-primary"
    ~unit_:"violations" (float_of_int ryw_loose);
  Workload.Bench_out.add out ~metric:"ryw_sticky" ~technique:"lazy-primary"
    ~unit_:"violations" (float_of_int ryw_sticky);
  Workload.Bench_out.add out ~metric:"read_p95_nonsticky"
    ~technique:"lazy-primary" ~unit_:"ms" (read_p95 res_loose);
  Workload.Bench_out.add out ~metric:"read_p95_sticky"
    ~technique:"lazy-primary" ~unit_:"ms" (read_p95 res_sticky);
  Workload.Bench_out.add out ~metric:"sticky_reads" ~technique:"lazy-primary"
    ~unit_:"reads"
    (float_of_int r_sticky.Workload.Router.sticky_reads);
  Workload.Bench_out.add out ~metric:"sticky_eliminates_ryw"
    ~technique:"lazy-primary" ~unit_:"bool"
    (if ryw_sticky = 0 && ryw_loose > 0 then 1. else 0.);
  (* -- part B: flash-crowd quadrant sweep with mid-spike failover ------ *)
  let flash =
    {
      Workload.Spec.fc_at = Simtime.of_ms 10;
      fc_duration = Simtime.of_ms 60;
      fc_intensity = 4.;
      fc_skew = 1.2;
      fc_shift = 50;
    }
  in
  let quadrants =
    [ "eager-primary"; "eager-ue-abcast"; "lazy-primary"; "lazy-ue" ]
  in
  let cells =
    List.map
      (fun name ->
        let spec =
          Workload.Builder.spec ~keys:100 ~skew:0.6 ~updates:0.5 ~txns ~flash
            ()
        in
        let builder =
          Workload.Builder.make ~seed:11 ~replicas:3 ~clients:4 ~spec
            ~router:Workload.Router.default_config
            ~failures:
              [
                Workload.Runner.crash_recover ~at:(Simtime.of_ms 35)
                  ~recover_at:(Simtime.of_ms 50) 0;
              ]
            ~partitions:
              [
                {
                  Workload.Runner.at = Simtime.of_ms 12;
                  group = [ 2 ];
                  heal_at = Simtime.of_ms 30;
                };
              ]
            ()
        in
        let result = Workload.Builder.run builder (technique name) in
        let st = Option.get result.Workload.Runner.router in
        (name, result, st))
      quadrants
  in
  Fmt.pr
    "@.flash crowd x%.0f at %a for %a (zipf %.1f, hot set shifted), \
     replica 2 partitioned 12-30ms, replica 0 crashed 35-50ms:@."
    flash.Workload.Spec.fc_intensity Simtime.pp flash.Workload.Spec.fc_at
    Simtime.pp flash.Workload.Spec.fc_duration flash.Workload.Spec.fc_skew;
  Fmt.pr "  %-16s %10s %9s %8s %9s %7s@." "quadrant" "tput" "p95" "retries"
    "failovers" "gave_up";
  List.iter
    (fun (name, (r : Workload.Runner.result), (st : Workload.Router.stats)) ->
      Fmt.pr "  %-16s %8.0f/s %7.2fms %8d %9d %7d@." name
        r.Workload.Runner.throughput
        r.Workload.Runner.latency_ms.Workload.Stats.p95
        st.Workload.Router.retries st.Workload.Router.failovers
        st.Workload.Router.gave_up;
      let params = [ ("phase", "flash") ] in
      Workload.Bench_out.add out ~metric:"flash_throughput" ~technique:name
        ~unit_:"txn/s" ~params r.Workload.Runner.throughput;
      Workload.Bench_out.add out ~metric:"flash_latency_p95" ~technique:name
        ~unit_:"ms" ~params r.Workload.Runner.latency_ms.Workload.Stats.p95;
      Workload.Bench_out.add out ~metric:"flash_failovers" ~technique:name
        ~unit_:"reads" ~params
        (float_of_int st.Workload.Router.failovers))
    cells;
  let total_failovers =
    List.fold_left
      (fun acc (_, _, (st : Workload.Router.stats)) ->
        acc + st.Workload.Router.failovers)
      0 cells
  in
  let total_gave_up =
    List.fold_left
      (fun acc (_, _, (st : Workload.Router.stats)) ->
        acc + st.Workload.Router.gave_up)
      0 cells
  in
  let survivor, survivor_tput =
    List.fold_left
      (fun (best, best_t) (name, (r : Workload.Runner.result), _) ->
        if r.Workload.Runner.throughput > best_t then
          (name, r.Workload.Runner.throughput)
        else (best, best_t))
      ("none", 0.) cells
  in
  Workload.Bench_out.add out ~metric:"flash_cells" ~technique:"all"
    ~unit_:"cells"
    (float_of_int (List.length cells));
  Workload.Bench_out.add out ~metric:"failover_success" ~technique:"all"
    ~unit_:"bool"
    (if total_failovers >= 1 && total_gave_up = 0 then 1. else 0.);
  Workload.Bench_out.add out ~metric:"flash_best_throughput" ~technique:"all"
    ~unit_:"txn/s" survivor_tput;
  Fmt.pr
    "@.verdict: sticky sessions eliminate read-your-writes over \
     lazy-primary (%d -> %d violations) at a read p95 cost of %.3f -> \
     %.3f ms; %s rides out the flash crowd best (%.0f txn/s) and %d \
     read%s survived mid-spike failover via router retry (%d abandoned)@."
    ryw_loose ryw_sticky (read_p95 res_loose) (read_p95 res_sticky) survivor
    survivor_tput total_failovers
    (if total_failovers = 1 then "" else "s")
    total_gave_up;
  Fmt.pr
    "@.Reading: round-robin reads over a lazy primary-copy scheme race@.\
     the refresh stream and lose (the session wrote at the primary but@.\
     read a stale secondary); pinning the session to its write replica@.\
     closes the window without touching the protocol — the paper's@.\
     middleware-tier argument, measured. The flash sweep stresses the@.\
     same router: the spike multiplies load and re-skews the hot set@.\
     while one replica is partitioned and another crashes, and reads@.\
     keep completing because the router retries them elsewhere.@.";
  ignore (Workload.Bench_out.write out)

let all =
  [
    ("perf1", latency_vs_replicas);
    ("perf2", mix_sweep);
    ("perf3", failover);
    ("perf4", eager_vs_lazy);
    ("perf5", message_counts);
    ("perf6", wan);
    ("perf7", phase_breakdown);
    ("perf8", crash_recovery_windows);
    ("perf9", loss_and_partition_rates);
    ("perf10", contention);
    ("perf11", partitions);
    ("perf12", tail_latency);
    ("perf13", resource_trajectory);
    ("perf14", batching);
    ("perf15", simulator_throughput);
    ("perf16", sharding);
    ("perf17", consistency_audit);
    ("perf18", quadrant_sweep);
    ("perf19", routed_tier);
  ]
