(* Ablations of the substrate design choices:

   abl1  ordering engine: sequencer-based vs consensus-based ABCAST
   abl2  read-one/write-all vs lock-at-all-replicas (quorum discussion, §5.4.1)
   abl3  failure-detector timeout vs failover stall (synchrony assumption, §2.1)
   abl4  consensus latency under message loss (stubborn channels at work) *)

open Sim

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let section title =
  hr ();
  Fmt.pr "%s@." title;
  hr ()

(* --- abl1 -------------------------------------------------------------- *)

let abcast_engines () =
  section
    "abl1 — ABCAST engine: sequencer (2 message delays) vs consensus-based \
     (CT rounds)";
  Fmt.pr "%-22s %14s %18s@." "engine" "lat mean (ms)" "crash gap (ms)";
  List.iter
    (fun (name, impl) ->
      let factory net ~replicas ~clients =
        Protocols.Active.create net ~replicas ~clients
          ~config:
            {
              Protocols.Active.default_config with
              abcast_impl = impl;
              passthrough = true;
            }
          ()
      in
      let spec =
        {
          Workload.Spec.default with
          update_ratio = 1.0;
          txns_per_client = 30;
        }
      in
      let smooth = Workload.Runner.run ~n_clients:2 ~spec factory in
      let crashed =
        Workload.Runner.run ~n_clients:2 ~spec
          ~failures:[ Workload.Runner.crash_at ~at:(Simtime.of_ms 100) 0 ]
          factory
      in
      Fmt.pr "%-22s %14.2f %18.1f@." name
        smooth.Workload.Runner.latency_ms.Workload.Stats.mean
        (Simtime.to_ms crashed.Workload.Runner.max_response_gap))
    [
      ("sequencer", Group.Abcast.Sequencer);
      ("consensus-based", Group.Abcast.Consensus_based);
    ];
  Fmt.pr
    "@.Reading: the sequencer is cheaper in the common case; both recover@.\
     from the crash of the ordering node in about the detection time.@."

(* --- abl2 -------------------------------------------------------------- *)

let rowa () =
  section
    "abl2 — Eager-UE locking: read-one/write-all vs locks at every replica";
  Fmt.pr "%-22s %12s %14s %12s@." "configuration" "upd ratio" "lat mean (ms)"
    "msgs/txn";
  List.iter
    (fun read_one_write_all ->
      List.iter
        (fun update_ratio ->
          let factory net ~replicas ~clients =
            Protocols.Eager_ue_locking.create net ~replicas ~clients
              ~config:
                {
                  Protocols.Eager_ue_locking.default_config with
                  read_one_write_all;
                  passthrough = true;
                }
              ()
          in
          let spec =
            {
              Workload.Spec.default with
              update_ratio;
              txns_per_client = 25;
              n_keys = 200;
            }
          in
          let result = Workload.Runner.run ~n_clients:2 ~spec factory in
          Fmt.pr "%-22s %12.0f%% %14.2f %12.1f@."
            (if read_one_write_all then "read-one/write-all" else "lock-everywhere")
            (100. *. update_ratio)
            result.Workload.Runner.latency_ms.Workload.Stats.mean
            result.Workload.Runner.messages_per_txn)
        [ 0.1; 0.5; 0.9 ])
    [ false; true ];
  Fmt.pr
    "@.Reading: ROWA pays off exactly on read-heavy mixes — the quorum@.\
     choice is orthogonal to the phase structure (paper §5.4.1).@."

(* --- abl3 -------------------------------------------------------------- *)

let fd_timeout () =
  section
    "abl3 — Failure-detector timeout vs ordering stall after a sequencer \
     crash";
  Fmt.pr "%-18s %20s@." "fd timeout (ms)" "delivery stall (ms)";
  List.iter
    (fun timeout_ms ->
      let engine = Engine.create ~seed:17 () in
      let net = Network.create engine ~n:3 Network.default_config in
      let members = [ 0; 1; 2 ] in
      let fd =
        Group.Fd.create_group net ~members
          ~timeout:(Simtime.of_ms timeout_ms)
          ~heartbeat_every:(Simtime.of_ms (max 5 (timeout_ms / 5)))
          ()
      in
      let group = Group.Abcast.create_group net ~members ~fd ~passthrough:true () in
      let last_delivery = Array.make 3 Simtime.zero in
      List.iter
        (fun m ->
          Group.Abcast.on_deliver
            (Group.Abcast.handle group ~me:m)
            (fun ~origin:_ _ -> last_delivery.(m) <- Engine.now engine))
        members;
      (* Member 1 broadcasts steadily; the sequencer (member 0) crashes. *)
      ignore
        (Engine.periodic engine ~every:(Simtime.of_ms 2)
           (Network.guard net 1 (fun () ->
                Group.Abcast.broadcast
                  (Group.Abcast.handle group ~me:1)
                  (Msg.Ping 0))));
      ignore
        (Engine.schedule engine ~after:(Simtime.of_ms 100) (fun () ->
             Network.crash net 0));
      (* Track the largest inter-delivery gap seen at member 1. *)
      let max_gap = ref Simtime.zero in
      let prev = ref Simtime.zero in
      Group.Abcast.on_deliver
        (Group.Abcast.handle group ~me:1)
        (fun ~origin:_ _ ->
          let now = Engine.now engine in
          let gap = Simtime.sub now !prev in
          if Simtime.(gap > !max_gap) then max_gap := gap;
          prev := now);
      ignore (Engine.run ~until:(Simtime.of_sec 3.) engine);
      Fmt.pr "%-18d %20.1f@." timeout_ms (Simtime.to_ms !max_gap))
    [ 50; 100; 200; 400 ];
  Fmt.pr
    "@.Reading: the stall tracks the detection timeout — the aggressive@.\
     timeouts that semi-passive replication is designed to make safe (§3.5).@."

(* --- abl4 -------------------------------------------------------------- *)

module Cint = Group.Consensus.Make (struct
  type t = int
end)

let consensus_under_loss () =
  section "abl4 — Consensus decision latency vs message loss";
  Fmt.pr "%-14s %18s@." "drop prob" "decide time (ms)";
  List.iter
    (fun drop ->
      let engine = Engine.create ~seed:23 () in
      let config = { Network.default_config with Network.drop_probability = drop } in
      let net = Network.create engine ~n:3 config in
      let members = [ 0; 1; 2 ] in
      let fd = Group.Fd.create_group net ~members () in
      let group =
        Cint.create_group net ~members ~fd ~rto:(Simtime.of_ms 5) ()
      in
      let decided_at = ref None in
      List.iter
        (fun m ->
          let h = Cint.handle group ~me:m in
          Cint.on_decide h (fun ~instance:_ _ ->
              if !decided_at = None then decided_at := Some (Engine.now engine));
          Cint.propose h ~instance:0 m)
        members;
      ignore (Engine.run ~until:(Simtime.of_sec 30.) engine);
      match !decided_at with
      | Some t -> Fmt.pr "%-14.1f %18.1f@." drop (Simtime.to_ms t)
      | None -> Fmt.pr "%-14.1f %18s@." drop "no decision")
    [ 0.0; 0.1; 0.2; 0.4 ];
  Fmt.pr
    "@.Reading: stubborn channels mask loss at the cost of latency;@.\
     agreement is never violated (see the qcheck suites).@."


(* --- abl5 -------------------------------------------------------------- *)

let optimistic_delivery () =
  section
    "abl5 — Optimistic atomic broadcast (KPAS99a): spontaneous vs total \
     order";
  Fmt.pr "%-22s %14s %18s@." "latency jitter" "order match"
    "overlap window (ms)";
  List.iter
    (fun (label, lo_us, hi_us) ->
      let engine = Engine.create ~seed:31 () in
      let config =
        {
          Network.default_config with
          Network.latency =
            Network.Uniform (Simtime.of_us lo_us, Simtime.of_us hi_us);
        }
      in
      let net = Network.create engine ~n:3 config in
      let members = [ 0; 1; 2 ] in
      let group = Group.Abcast.create_group net ~members ~passthrough:true () in
      (* Timestamps of optimistic and final delivery at member 2 — a
         follower, whose spontaneous order can genuinely diverge from the
         sequencer's total order. *)
      let opt_time = Hashtbl.create 64 in
      let h0 = Group.Abcast.handle group ~me:2 in
      Group.Abcast.on_opt_deliver h0 (fun ~origin msg ->
          match msg with
          | Msg.Ping k -> Hashtbl.replace opt_time (origin, k) (Engine.now engine)
          | _ -> ());
      let windows = ref [] in
      Group.Abcast.on_deliver h0 (fun ~origin msg ->
          match msg with
          | Msg.Ping k -> (
              match Hashtbl.find_opt opt_time (origin, k) with
              | Some t ->
                  windows :=
                    Simtime.to_ms (Simtime.sub (Engine.now engine) t) :: !windows
              | None -> ())
          | _ -> ());
      (* Three senders broadcast interleaved. *)
      List.iter
        (fun m ->
          let h = Group.Abcast.handle group ~me:m in
          for k = 0 to 49 do
            ignore
              (Engine.schedule engine
                 ~after:(Simtime.of_us ((k * 120) + (m * 37)))
                 (fun () -> Group.Abcast.broadcast h (Msg.Ping k)))
          done)
        members;
      ignore (Engine.run ~until:(Simtime.of_sec 30.) engine);
      let opt = Array.of_list (Group.Abcast.opt_delivered h0) in
      let final = Array.of_list (Group.Abcast.delivered h0) in
      (* Pairwise order agreement (Kendall-tau style): the fraction of
         message pairs ordered identically in both sequences — pairs
         ordered the same are exactly the optimistic work that survives
         the definitive order. *)
      let position arr =
        let tbl = Hashtbl.create 256 in
        Array.iteri (fun i id -> Hashtbl.replace tbl id i) arr;
        tbl
      in
      let opt_pos = position opt in
      let agree = ref 0 and total = ref 0 in
      let n = Array.length final in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match
            (Hashtbl.find_opt opt_pos final.(i), Hashtbl.find_opt opt_pos final.(j))
          with
          | Some pi, Some pj ->
              incr total;
              if pi < pj then incr agree
          | _ -> ()
        done
      done;
      let match_rate =
        if !total = 0 then 0. else 100. *. float_of_int !agree /. float_of_int !total
      in
      let mean_window =
        match !windows with
        | [] -> 0.
        | ws -> List.fold_left ( +. ) 0. ws /. float_of_int (List.length ws)
      in
      Fmt.pr "%-22s %13.0f%% %18.2f@." label match_rate mean_window)
    [
      ("none (constant)", 1_000, 1_000);
      ("moderate (0.5-1.5ms)", 500, 1_500);
      ("high (0.1-3ms)", 100, 3_000);
      ("extreme (0.1-10ms)", 100, 10_000);
    ];
  Fmt.pr
    "@.Reading: with low jitter the spontaneous order nearly always equals@.\
     the total order, so work started at optimistic delivery is almost@.\
     never wasted — the window is the time the paper's follow-up work@.\
     hides transaction execution in.@."


(* --- abl6 -------------------------------------------------------------- *)

let optimistic_certification () =
  section
    "abl6 — Optimistic certification: hiding the certification cost inside \
     the ordering protocol (KPAS99a)";
  Fmt.pr "%-18s %22s %22s %10s@." "certify cost (ms)" "classic lat (ms)"
    "optimistic lat (ms)" "saved";
  List.iter
    (fun certify_ms ->
      let measure optimistic =
        let factory net ~replicas ~clients =
          Protocols.Certification_based.create net ~replicas ~clients
            ~config:
              {
                Protocols.Certification_based.default_config with
                passthrough = true;
                certify_time = Simtime.of_us (int_of_float (certify_ms *. 1000.));
                optimistic;
              }
            ()
        in
        let spec =
          {
            Workload.Spec.default with
            update_ratio = 1.0;
            txns_per_client = 30;
            n_keys = 500;
          }
        in
        let result = Workload.Runner.run ~n_clients:2 ~spec factory in
        result.Workload.Runner.latency_ms.Workload.Stats.mean
      in
      let classic = measure false and opt = measure true in
      Fmt.pr "%-18.1f %22.2f %22.2f %9.0f%%@." certify_ms classic opt
        (100. *. (classic -. opt) /. classic))
    [ 0.5; 1.0; 2.0; 4.0 ];
  Fmt.pr
    "@.Reading: while the certification cost fits in the ordering overlap@.\
     window its latency vanishes (the KPAS99a result); beyond it, invalidated@.\
     pre-checks waste the serial certifier and optimism backfires — optimism@.\
     pays exactly when the spontaneous order is usually definitive (abl5).@."


(* --- abl7 -------------------------------------------------------------- *)

let lock_quorums () =
  section
    "abl7 — Lock quorums in eager-UE locking (paper §5.4.1): quorum size \
     vs latency and messages";
  Fmt.pr "%-18s %14s %12s %10s@." "lock sites" "lat mean (ms)" "msgs/txn"
    "aborted";
  List.iter
    (fun (label, lock_quorum, n) ->
      let factory net ~replicas ~clients =
        Protocols.Eager_ue_locking.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_ue_locking.default_config with
              lock_quorum;
              passthrough = true;
            }
          ()
      in
      let spec =
        {
          Workload.Spec.default with
          update_ratio = 1.0;
          txns_per_client = 25;
          n_keys = 100;
        }
      in
      let result =
        Workload.Runner.run ~n_replicas:n ~n_clients:3 ~spec factory
      in
      Fmt.pr "%-18s %14.2f %12.1f %10d@." label
        result.Workload.Runner.latency_ms.Workload.Stats.mean
        result.Workload.Runner.messages_per_txn result.Workload.Runner.aborted)
    [
      ("all of 5", None, 5);
      ("4 of 5", Some 4, 5);
      ("3 of 5 (majority)", Some 3, 5);
      ("all of 3", None, 3);
      ("2 of 3 (majority)", Some 2, 3);
    ];
  Fmt.pr
    "@.Reading: smaller (still intersecting) quorums trim the lock round;@.\
     the phase structure — and the serialisable outcome — are unchanged.@."


(* --- abl8 -------------------------------------------------------------- *)

let blocking_vs_nonblocking () =
  section
    "abl8 — Atomic commitment: blocking 2PC vs non-blocking 3PC in eager \
     primary copy (paper §2.1)";
  Fmt.pr "%-14s %14s %14s %12s@." "commit" "lat mean (ms)" "crash gap (ms)"
    "committed";
  List.iter
    (fun (label, nonblocking_commit) ->
      let factory net ~replicas ~clients =
        Protocols.Eager_primary.create net ~replicas ~clients
          ~config:
            {
              Protocols.Eager_primary.default_config with
              nonblocking_commit;
              passthrough = true;
            }
          ()
      in
      let spec =
        {
          Workload.Spec.default with
          update_ratio = 1.0;
          txns_per_client = 25;
        }
      in
      let smooth = Workload.Runner.run ~n_clients:2 ~spec factory in
      let crashed =
        Workload.Runner.run ~n_clients:2 ~spec
          ~failures:[ Workload.Runner.crash_at ~at:(Simtime.of_ms 60) 0 ]
          factory
      in
      Fmt.pr "%-14s %14.2f %14.1f %12d@." label
        smooth.Workload.Runner.latency_ms.Workload.Stats.mean
        (Simtime.to_ms crashed.Workload.Runner.max_response_gap)
        crashed.Workload.Runner.committed)
    [ ("2PC", false); ("3PC", true) ];
  Fmt.pr
    "@.Reading: 3PC pays one extra round on every transaction to buy@.\
     crash-autonomy; with the client-retry layer on top the visible@.\
     failover is similar, but prepared participants terminate on their@.\
     own instead of waiting for the resubmitted transaction (see the@.\
     3pc test suite for the pure blocking-vs-non-blocking contrast).@."

let all =
  [
    ("abl1", abcast_engines);
    ("abl2", rowa);
    ("abl3", fd_timeout);
    ("abl4", consensus_under_loss);
    ("abl5", optimistic_delivery);
    ("abl6", optimistic_certification);
    ("abl7", lock_quorums);
    ("abl8", blocking_vs_nonblocking);
  ]
