(* The whole taxonomy, side by side: every technique of the paper runs the
   same workload on the same simulated cluster, and the table shows the
   trade-offs the paper describes qualitatively — response time, message
   cost, abort rate, consistency.

     dune exec examples/taxonomy_tour.exe
*)

(* Tuple view of the registry under default configuration, for the
   sweeps below. *)
let registry_entries =
  List.map
    (fun (e : Protocols.Registry.entry) ->
      (e.Protocols.Registry.key, e.info, Protocols.Registry.default_factory e))
    Protocols.Registry.all

let () =
  let spec =
    {
      Workload.Spec.default with
      update_ratio = 0.5;
      txns_per_client = 25;
      key_skew = 0.8;
      n_keys = 50;
    }
  in
  Fmt.pr "workload: %a, 3 replicas, 4 clients@.@." Workload.Spec.pp spec;
  Fmt.pr "%-18s %-16s %10s %8s %9s %11s %6s@." "technique" "phases"
    "lat(ms)" "aborts" "msgs/txn" "converged" "1SR";
  List.iter
    (fun (key, (info : Core.Technique.info), factory) ->
      let result =
        Workload.Runner.run ~spec (fun net ~replicas ~clients ->
            factory net ~replicas ~clients)
      in
      Fmt.pr "%-18s %-16s %10.2f %8d %9.1f %11b %6b@." key
        (Format.asprintf "%a" Core.Phase.pp_sequence info.expected_phases)
        result.Workload.Runner.latency_ms.Workload.Stats.mean
        result.Workload.Runner.aborted result.Workload.Runner.messages_per_txn
        result.Workload.Runner.converged result.Workload.Runner.serializable)
    registry_entries;
  Fmt.pr
    "@.(msgs/txn here includes failure-detector heartbeats and channel acks;@.\
     bench perf5 reports the protocol-only message pattern.)@."
