(* Shared Cmdliner vocabulary for replisim's subcommands: the technique
   and fault-event converters, the workload flags (seed, replicas,
   clients, txns, ...) that run/metrics/campaign/timeline all accept,
   and the --set/--config technique-configuration pipeline. Each
   subcommand composes these terms, so a flag means the same thing (and
   has the same default) everywhere it appears, while --help stays
   per-subcommand. *)

open Cmdliner

let fail fmt = Fmt.kstr (fun msg -> Fmt.epr "replisim: %s@." msg; exit 2) fmt

(* ---- technique selection -------------------------------------------- *)

let technique_conv =
  let parse s =
    Protocols.Registry.find_res s |> Result.map_error (fun m -> `Msg m)
  in
  let print ppf (e : Protocols.Registry.entry) =
    Format.pp_print_string ppf e.key
  in
  Arg.conv (parse, print)

let technique_arg =
  Arg.(
    required
    & opt (some technique_conv) None
    & info [ "t"; "technique" ] ~docv:"TECHNIQUE"
        ~doc:
          (Printf.sprintf "Replication technique to run. One of: %s."
             (String.concat ", " Protocols.Registry.keys)))

let technique_opt ~doc =
  Arg.(
    value
    & opt (some technique_conv) None
    & info [ "t"; "technique" ] ~docv:"TECHNIQUE"
        ~doc:
          (Printf.sprintf "%s One of: %s." doc
             (String.concat ", " Protocols.Registry.keys)))

(* ---- fault events ---------------------------------------------------- *)

(* REPLICA@TIME events: accepts 0@100ms, 0@100 (ms) and 0@1s / 0@1.5s,
   plus comma-separated lists (0@1s,2@3s) — used by --crash and
   --recover. *)
let event_conv =
  let parse_one s =
    match String.split_on_char '@' s with
    | [ replica; at ] -> (
        let time =
          if Filename.check_suffix at "ms" then
            Option.map Sim.Simtime.of_ms
              (int_of_string_opt (Filename.chop_suffix at "ms"))
          else if Filename.check_suffix at "s" then
            Option.map Sim.Simtime.of_sec
              (float_of_string_opt (Filename.chop_suffix at "s"))
          else Option.map Sim.Simtime.of_ms (int_of_string_opt at)
        in
        match (int_of_string_opt replica, time) with
        | Some r, _ when r < 0 ->
            Error
              (`Msg
                (Printf.sprintf "replica id must be non-negative, got %d" r))
        | Some r, Some at -> Ok (r, at)
        | _ -> Error (`Msg "expected REPLICA@TIME, e.g. 0@100ms or 0@1s"))
    | _ -> Error (`Msg "expected REPLICA@TIME, e.g. 0@100ms or 0@1s")
  in
  let parse s =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
          match parse_one item with
          | Ok ev -> go (ev :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)
  in
  let print ppf events =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
      (fun ppf (replica, at) ->
        Format.fprintf ppf "%d@%a" replica Sim.Simtime.pp at)
      ppf events
  in
  Arg.conv (parse, print)

let crashes_arg =
  Arg.(
    value & opt_all event_conv []
    & info [ "crash" ] ~docv:"R@TIME"
        ~doc:
          "Crash replica R at TIME (repeatable; comma lists accepted), e.g. \
           --crash 0@100ms or --crash 0@1s,2@3s.")

let recoveries_arg =
  Arg.(
    value & opt_all event_conv []
    & info [ "recover" ] ~docv:"R@TIME"
        ~doc:
          "Recover replica R at TIME (same syntax as $(b,--crash): \
           repeatable, comma lists accepted, e.g. --recover 0@1s,2@3s). Each \
           entry must pair with an earlier --crash of the same replica.")

(* ---- shared workload flags ------------------------------------------- *)

let seed_arg ?(default = 11) () =
  Arg.(
    value & opt int default
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let replicas_arg ?(default = 3) () =
  Arg.(
    value & opt int default
    & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replica count.")

let clients_arg ?(default = 4) () =
  Arg.(
    value & opt int default
    & info [ "clients" ] ~docv:"M" ~doc:"Client count.")

let txns_arg ?(default = 50) () =
  Arg.(
    value & opt int default
    & info [ "txns" ] ~docv:"T" ~doc:"Transactions per client.")

let updates_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "updates" ] ~docv:"RATIO"
        ~doc:
          "Fraction of update transactions (default 0.5; mutually exclusive \
           with $(b,--reads)).")

let reads_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "reads" ] ~docv:"RATIO"
        ~doc:
          "Fraction of read transactions — shorthand for $(b,--updates) \
           (1 - RATIO); mutually exclusive with it.")

(* Resolve the --updates / --reads pair into the spec's update ratio;
   naming both is an error rather than a silent precedence rule. *)
let mix ?updates ?reads () =
  match (updates, reads) with
  | Some _, Some _ -> fail "--updates and --reads are mutually exclusive"
  | Some u, None -> u
  | None, Some r ->
      if r < 0. || r > 1. then fail "--reads must be in [0,1], got %g" r;
      1. -. r
  | None, None -> 0.5

let ops_arg =
  Arg.(
    value & opt int 1
    & info [ "ops" ] ~docv:"K" ~doc:"Operations per transaction.")

let keys_arg =
  Arg.(value & opt int 100 & info [ "keys" ] ~docv:"K" ~doc:"Database size.")

let cross_arg =
  Arg.(
    value & opt float 0.
    & info [ "cross" ] ~docv:"RATIO"
        ~doc:
          "Fraction of multi-op transactions forced to span two shards \
           (needs a sharded technique, e.g. $(b,--set active.shards=4), and \
           $(b,--ops) >= 2; the rest stay within one shard).")

let skew_arg =
  Arg.(
    value & opt float 0.6
    & info [ "skew"; "zipf" ] ~docv:"THETA"
        ~doc:
          "Zipf-skewed key popularity: theta of the zipfian key sampler \
           (0 = uniform; higher concentrates traffic on hot keys; \
           deterministic per seed). $(b,--zipf) and $(b,--skew) are \
           aliases.")

(* ---- routing tier / session workloads -------------------------------- *)

let router_arg =
  Arg.(
    value & flag
    & info [ "router" ]
        ~doc:
          "Route every request through the client-side routing tier: \
           read/write splitting, cached primary discovery, bounded \
           retry-with-backoff across failover (see also $(b,--sticky)).")

let sticky_arg =
  Arg.(
    value & flag
    & info [ "sticky" ]
        ~doc:
          "Pin each session's reads to the replica that answered its writes \
           (implies $(b,--router)); restores read-your-writes over lazy \
           techniques at a latency cost.")

(* --sticky implies --router; plain --router keeps round-robin reads. *)
let router_config ~router ~sticky =
  if router || sticky then
    Some { Workload.Router.default_config with Workload.Router.sticky }
  else None

let shape_arg =
  Arg.(
    value
    & opt
        (enum [ ("mixed", Workload.Spec.Mixed); ("tpcb", Workload.Spec.Tpcb) ])
        Workload.Spec.Mixed
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "Session workload shape: $(b,mixed) (single-key transactions, the \
           default) or $(b,tpcb) (TPC-B-like two-key transfers and \
           balance-probe reads).")

let flash_arg =
  Arg.(
    value & flag
    & info [ "flash-crowd" ]
        ~doc:
          "Declare a flash-crowd phase: mid-run the load spikes and the \
           zipfian hot set re-skews and rotates for the duration of the \
           window (the built-in spike profile; see Workload.Spec).")

let flash_spec flash =
  if flash then Some Workload.Spec.default_flash_crowd else None

(* ---- technique configuration (--set / --config) ---------------------- *)

let directive_conv =
  let parse s =
    Protocols.Config.parse_directive s |> Result.map_error (fun m -> `Msg m)
  in
  let print ppf d =
    Format.pp_print_string ppf (Protocols.Config.directive_to_string d)
  in
  Arg.conv (parse, print)

let set_args =
  Arg.(
    value
    & opt_all directive_conv []
    & info [ "set" ] ~docv:"TECH.KEY=VALUE"
        ~doc:
          "Override one technique parameter, e.g. $(b,--set \
           certification.abcast_impl=consensus) or $(b,--set \
           active.batch_window=5ms). Repeatable; see $(b,replisim config) \
           for the per-technique keys.")

let config_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Read TECH.KEY=VALUE directives from FILE (one per line, '#' \
           comments); $(b,--set) flags override the file.")

(* A directive naming an unknown technique or an unknown key would
   otherwise be silently ignored by techniques it doesn't apply to, so
   every directive is validated against the registry up front. *)
let validate_directive (d : Protocols.Config.directive) =
  match Protocols.Registry.find_res d.technique with
  | Error msg -> Error (Printf.sprintf "--set %s: %s" (Protocols.Config.directive_to_string d) msg)
  | Ok entry -> (
      match Protocols.Config.find_key entry.schema d.key with
      | Some _ -> Ok ()
      | None ->
          Error
            (Printf.sprintf "--set %s: unknown config key %S for %s (valid keys: %s)"
               (Protocols.Config.directive_to_string d)
               d.key entry.key
               (String.concat ", " (Protocols.Config.keys entry.schema))))

(* File directives first, --set flags after, so the flags win when both
   bind the same key. *)
let directives_term =
  let combine file sets =
    let file_directives =
      match file with
      | None -> Ok []
      | Some path -> Protocols.Config.parse_file path
    in
    match file_directives with
    | Error msg -> Error msg
    | Ok from_file -> (
        let directives = from_file @ sets in
        match
          List.fold_left
            (fun acc d ->
              match acc with
              | Error _ as e -> e
              | Ok () -> validate_directive d)
            (Ok ()) directives
        with
        | Error msg -> Error msg
        | Ok () -> Ok directives)
  in
  Term.(term_result' (const combine $ config_file_arg $ set_args))

(* The resolved configuration of [entry] under [directives] plus its
   constructor. Directives were validated at parse time, so a failure
   here is a programming error. *)
let resolve (entry : Protocols.Registry.entry) directives =
  let pairs = Protocols.Config.pairs_for ~technique:entry.key directives in
  match Protocols.Registry.configure entry pairs with
  | Ok (cfg, factory) -> (cfg, factory)
  | Error msg -> fail "%s" msg

(* Shard count bound in a resolved configuration (every technique's
   schema carries the shared [shards] key; 1 = unsharded). *)
let shards_of (cfg : Protocols.Config.t) =
  match List.assoc_opt "shards" cfg with
  | Some (Protocols.Config.Int k) -> k
  | _ -> 1

(* Fail with a flag-level message before the factory would raise: each
   replication group needs at least one replica. *)
let check_shards ~n cfg =
  let shards = shards_of cfg in
  if shards > n then
    fail "%d shards need at least %d replicas (got -n %d); raise -n or lower \
          shards"
      shards shards n;
  shards

(* Header [config] pairs: only the non-default bindings, so an export of
   a default run stays byte-identical to pre-configuration versions. *)
let config_pairs (entry : Protocols.Registry.entry) (cfg : Protocols.Config.t) =
  let defaults = Protocols.Registry.default_config entry in
  List.filter
    (fun (k, v) -> List.assoc_opt k (Protocols.Config.to_strings defaults) <> Some v)
    (Protocols.Config.to_strings cfg)
