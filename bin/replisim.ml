(* replisim — run any of the paper's replication techniques under a
   configurable workload on the simulated cluster.

     replisim list
     replisim config active
     replisim run -t eager-ue-abcast -n 5 --clients 4 --updates 0.8
     replisim run -t certification --set certification.abcast_impl=consensus
     replisim run -t active --set active.batch_window=5ms
     replisim trace -t active

   The shared argument vocabulary (technique/event converters, workload
   flags, --set/--config resolution) lives in Cli; the run plumbing in
   Workload.Builder. *)

open Cmdliner

(* ---- list ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the implemented replication techniques." in
  let run () =
    List.iter
      (fun (e : Protocols.Registry.entry) ->
        Fmt.pr "%-18s %a@." e.key Core.Technique.pp_info e.info)
      Protocols.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- config --------------------------------------------------------- *)

let config_cmd =
  let doc =
    "Show the configuration schema of one technique (or all): every \
     settable key with its type, default, effective value under the given \
     $(b,--set)/$(b,--config) directives, and what it does."
  in
  let technique =
    Arg.(
      value
      & pos 0 (some Cli.technique_conv) None
      & info [] ~docv:"TECHNIQUE"
          ~doc:"Technique whose schema to print (default: all).")
  in
  let run technique directives =
    let entries =
      match technique with
      | Some e -> [ e ]
      | None -> Protocols.Registry.all
    in
    List.iteri
      (fun i (e : Protocols.Registry.entry) ->
        if i > 0 then Fmt.pr "@.";
        let cfg, _ = Cli.resolve e directives in
        let effective = Protocols.Config.to_strings cfg in
        Fmt.pr "%s — %s (paper §%s)@." e.key e.info.Core.Technique.name
          e.info.Core.Technique.section;
        List.iter
          (fun (k : Protocols.Config.key) ->
            let default = Protocols.Config.value_to_string k.default in
            let eff =
              Option.value ~default (List.assoc_opt k.name effective)
            in
            let doc =
              if eff <> default then
                Printf.sprintf "%s [default: %s]" k.doc default
              else k.doc
            in
            Fmt.pr "  %-16s %-28s = %-10s %s@." k.name
              (Protocols.Config.ty_to_string k.ty)
              eff doc)
          e.schema)
      entries
  in
  Cmd.v (Cmd.info "config" ~doc)
    Term.(const run $ technique $ Cli.directives_term)

(* ---- run records ----------------------------------------------------- *)

(* One finished run distilled into the canonical normalized run record
   (see Workload.Run_record), including the probe-measured
   single-transaction causal census — the document `replisim sweep`
   writes per cell and `replisim compare` diffs. *)
let make_record ~(entry : Protocols.Registry.entry) ~cfg ~factory ~seed ~n ~m
    ~arrival ~spec result =
  let census =
    let p = Workload.Builder.probe ~n factory in
    let _, sound, s = Workload.Builder.probe_summary p in
    if sound && s.Sim.Msg_dag.replied then
      Some (s.Sim.Msg_dag.messages, s.Sim.Msg_dag.steps)
    else None
  in
  Workload.Run_record.normalize
    (Workload.Run_record.of_run ~technique:entry.key
       ~config:(Cli.config_pairs entry cfg) ~seed ~n_replicas:n ~n_clients:m
       ~arrival ~spec ?census result)

(* ---- run ------------------------------------------------------------ *)

let run_cmd =
  let doc = "Run a workload against a technique and report the metrics." in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit the result as a CSV row (with header).")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Also write the run's canonical run record — the normalized \
             JSON document $(b,replisim sweep) emits per cell and \
             $(b,replisim compare) diffs — to FILE ($(b,-) for stdout).")
  in
  let run (entry : Protocols.Registry.entry) directives n m updates reads txns
      ops keys skew cross seed crashes recoveries router sticky shape flash
      csv record_to =
    let updates = Cli.mix ?updates ?reads () in
    let cfg, factory = Cli.resolve entry directives in
    let shards = Cli.check_shards ~n cfg in
    if cross > 0. && shards <= 1 then
      Cli.fail
        "--cross needs a sharded technique; add --set %s.shards=K (K >= 2)"
        entry.key;
    if cross > 0. && ops < 2 then
      Cli.fail "--cross needs multi-op transactions; add --ops 2 (or more)";
    let failures =
      match
        Workload.Builder.crash_schedule ~crashes:(List.concat crashes)
          ~recoveries:(List.concat recoveries)
      with
      | Ok failures -> failures
      | Error msg -> Cli.fail "%s" msg
    in
    let spec =
      Workload.Builder.spec ~keys ~skew ~updates ~ops ~txns ~shards ~cross
        ~shape ?flash:(Cli.flash_spec flash) ()
    in
    let builder =
      Workload.Builder.make ~seed ~replicas:n ~clients:m ~spec ~failures
        ?router:(Cli.router_config ~router ~sticky) ()
    in
    let result = Workload.Builder.run builder factory in
    (* Emitted after the human report so that with "-" the record is the
       last stdout line — `run ... --record - | tail -1` is the idiom. *)
    let emit_record () =
      match record_to with
      | None -> ()
      | Some file -> (
          let record =
            make_record ~entry ~cfg ~factory ~seed ~n ~m ~arrival:`Closed ~spec
              result
          in
          match file with
          | "-" -> print_endline (Workload.Run_record.to_json record)
          | file ->
              let oc = open_out file in
              output_string oc (Workload.Run_record.to_json record);
              output_char oc '\n';
              close_out oc)
    in
    if csv then begin
      let label =
        Printf.sprintf "%s;n=%d;upd=%.2f;seed=%d" entry.key n updates seed
      in
      Workload.Report.to_csv Fmt.stdout [ (label, result) ];
      emit_record ();
      exit 0
    end;
    Fmt.pr "workload  : %a@." Workload.Spec.pp spec;
    if shards > 1 then
      Fmt.pr "sharding  : %d groups over %d replicas (group size <= %d), \
              cross-shard via 2PC@."
        shards n
        (Protocols.Sharded.probe_group_size ~n ~shards);
    (match Cli.config_pairs entry cfg with
    | [] -> ()
    | pairs ->
        Fmt.pr "config    : %s@."
          (String.concat " "
             (List.map (fun (k, v) -> k ^ "=" ^ v) pairs)));
    Fmt.pr "result    : %a@." Workload.Runner.pp_result result;
    Fmt.pr "engine    : %s@." (Workload.Report.engine_summary result);
    Fmt.pr "latencies : all [%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.latency_ms;
    Fmt.pr "            upd [%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.update_latency_ms;
    Fmt.pr "            read[%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.read_latency_ms;
    Fmt.pr "failover  : max response gap %a@." Sim.Simtime.pp
      result.Workload.Runner.max_response_gap;
    (match result.Workload.Runner.router with
    | None -> ()
    | Some st ->
        Fmt.pr "router    : %s %a@."
          (if st.Workload.Router.sticky then "sticky" else "round-robin")
          Workload.Router.pp_stats st);
    Fmt.pr "drops     : %d (loss %d, crashed %d, partitioned %d)@."
      result.Workload.Runner.dropped result.Workload.Runner.dropped_loss
      result.Workload.Runner.dropped_crashed
      result.Workload.Runner.dropped_partitioned;
    List.iter
      (fun (phase, s) ->
        Fmt.pr "phase %-3s : [%a]@." (Core.Phase.code phase)
          Workload.Stats.pp_summary s)
      result.Workload.Runner.phase_ms;
    emit_record ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ Cli.technique_arg $ Cli.directives_term
      $ Cli.replicas_arg () $ Cli.clients_arg () $ Cli.updates_arg
      $ Cli.reads_arg $ Cli.txns_arg () $ Cli.ops_arg $ Cli.keys_arg
      $ Cli.skew_arg $ Cli.cross_arg $ Cli.seed_arg () $ Cli.crashes_arg
      $ Cli.recoveries_arg $ Cli.router_arg $ Cli.sticky_arg $ Cli.shape_arg
      $ Cli.flash_arg $ csv $ record_arg)

(* ---- trace ---------------------------------------------------------- *)

let trace_cmd =
  let doc =
    "Run a single transaction and print its phase trace (the paper's \
     timeline figures), optionally as JSONL or Chrome trace_event JSON."
  in
  let nondet =
    Arg.(
      value & flag
      & info [ "nondet" ]
          ~doc:"Use a non-deterministic write (exercises semi-active's AC).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Pretty
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,pretty) (human-readable marks), $(b,jsonl) \
             (one JSON object per span) or $(b,chrome) (trace_event JSON for \
             Perfetto / chrome://tracing).")
  in
  let run (entry : Protocols.Registry.entry) directives nondet format =
    let cfg, factory = Cli.resolve entry directives in
    let ops =
      if nondet then [ Store.Operation.Write_random "x" ]
      else [ Store.Operation.Incr ("x", 1) ]
    in
    let p =
      Workload.Builder.probe ~seed:3 ~n:3 ~ops
        ~until:(Sim.Simtime.of_sec 10.) factory
    in
    let info = entry.info in
    let spans = p.Workload.Builder.p_inst.Core.Technique.spans in
    let rid = p.Workload.Builder.p_rid in
    match format with
    | `Jsonl ->
        print_endline
          (Workload.Report.header_json
             ~config:(Cli.config_pairs entry cfg)
             ~seed:3 ~technique:entry.key ~n_replicas:3 ());
        print_endline (Sim.Trace_export.to_jsonl (Core.Phase_span.collector spans))
    | `Chrome ->
        print_endline (Sim.Trace_export.to_chrome (Core.Phase_span.collector spans))
    | `Pretty ->
        Fmt.pr "technique : %s (paper §%s)@." info.Core.Technique.name
          info.Core.Technique.section;
        Fmt.pr "signature : %a   [paper row: %a]@." Core.Phase.pp_sequence
          (Core.Phase_span.signature spans ~rid)
          Core.Phase.pp_sequence info.Core.Technique.expected_phases;
        Core.Phase_trace.pp_marks Fmt.stdout
          (Core.Phase_trace.marks
             p.Workload.Builder.p_inst.Core.Technique.phases ~rid);
        Fmt.pr "spans     :@.";
        List.iter
          (fun (_, span) ->
            Fmt.pr "  %a (%.3f ms)@." Sim.Span.pp_span span
              (Option.value ~default:0. (Sim.Span.duration_ms span)))
          (Core.Phase_span.phase_spans spans ~rid)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ Cli.technique_arg $ Cli.directives_term $ nondet $ format)

(* ---- explain -------------------------------------------------------- *)

let explain_matches (info : Core.Technique.info) ~n
    (s : Sim.Msg_dag.summary) =
  s.Sim.Msg_dag.replied
  && s.Sim.Msg_dag.messages = info.expected_messages ~n
  && s.Sim.Msg_dag.steps = info.expected_steps

let pp_endpoint ~n ppf e =
  if e >= n then Fmt.pf ppf "c%d" (e - n) else Fmt.pf ppf "r%d" e

let explain_pretty ~n ~shards key (info : Core.Technique.info)
    (msgs : Sim.Msg_dag.msg list) (s : Sim.Msg_dag.summary) =
  let on_path =
    List.map (fun m -> m.Sim.Msg_dag.span.Sim.Span.id) s.critical_path
  in
  Fmt.pr "technique : %s (%s, paper §%s)@." info.name key info.section;
  Fmt.pr "replicas  : %d (+1 client), constant 1 ms links@." n;
  if shards > 1 then
    Fmt.pr
      "sharding  : %d groups — single-shard txn runs in one group of <= %d \
       replicas, so the expectation below is the §5 cost at n=%d@."
      shards
      (Protocols.Sharded.probe_group_size ~n ~shards)
      (Protocols.Sharded.probe_group_size ~n ~shards);
  Fmt.pr "messages  : %d observed / %d expected   (+%d transport acks, %d self)@."
    s.messages (info.expected_messages ~n) s.transport_acks s.self_sends;
  Fmt.pr "steps     : %d observed / %d expected@." s.steps info.expected_steps;
  Fmt.pr "verdict   : %s@."
    (if explain_matches info ~n s then "OK — matches the §5 expectation"
     else "DEVIATION from the §5 expectation");
  Fmt.pr "@.timeline (* = critical path, RE -> END):@.";
  List.iter
    (fun (m : Sim.Msg_dag.msg) ->
      let sp = m.span in
      let mark = if List.mem sp.Sim.Span.id on_path then "*" else " " in
      let fate =
        match (m.delivered, m.drop) with
        | true, _ -> ""
        | _, Some cause -> "  [dropped: " ^ cause ^ "]"
        | _ -> "  [in flight]"
      in
      Fmt.pr " %s %8.3f ms  %a->%a  %s%s@." mark
        (Sim.Simtime.to_ms sp.Sim.Span.start)
        (pp_endpoint ~n) m.src
        (fun ppf -> function
          | Some d -> pp_endpoint ~n ppf d
          | None -> Fmt.pf ppf "?")
        m.dst m.label fate)
    msgs;
  Fmt.pr "@.critical path (%d steps):@.  %s@." s.steps
    (String.concat " -> "
       (List.map (fun (m : Sim.Msg_dag.msg) -> m.Sim.Msg_dag.label)
          s.critical_path))

let explain_json ~n ~shards ~seed key (info : Core.Technique.info)
    (s : Sim.Msg_dag.summary) =
  Printf.sprintf
    {|{"technique":%S,"n":%d,"shards":%d,"seed":%d,"observed":{"messages":%d,"steps":%d,"transport_acks":%d,"self_sends":%d,"sends":%d,"dropped":%d,"replied":%b},"expected":{"messages":%d,"steps":%d},"critical_path":[%s],"match":%b}|}
    key n shards seed s.Sim.Msg_dag.messages s.steps s.transport_acks
    s.self_sends s.sends s.dropped s.replied (info.expected_messages ~n)
    info.expected_steps
    (String.concat ","
       (List.map
          (fun (m : Sim.Msg_dag.msg) ->
            Printf.sprintf "%S" m.Sim.Msg_dag.label)
          s.critical_path))
    (explain_matches info ~n s)

let explain_csv_header =
  "technique,n,shards,seed,messages,expected_messages,steps,expected_steps,transport_acks,self_sends,sends,dropped,replied,match"

let explain_csv_row ~n ~shards ~seed key (info : Core.Technique.info)
    (s : Sim.Msg_dag.summary) =
  Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%b,%b" key n shards seed
    s.Sim.Msg_dag.messages (info.expected_messages ~n) s.steps
    info.expected_steps s.transport_acks s.self_sends s.sends s.dropped
    s.replied (explain_matches info ~n s)

let explain_cmd =
  let doc =
    "Measure one transaction's message cost and critical path from causally \
     linked message spans: per-technique message count and \
     communication-step depth (the paper's §5 comparison), with the causal \
     chain from the client's request to its reply highlighted. With \
     $(b,--check), validate every technique's observed message/step matrix \
     against its §5 expectation and exit non-zero on deviation."
  in
  let technique_opt =
    Cli.technique_opt ~doc:"Technique to explain (default: all)."
  in
  let seed = Cli.seed_arg ~default:7 () in
  let format =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("json", `Json); ("csv", `Csv) ]) `Pretty
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,pretty) (per-transaction timeline with the \
             critical path highlighted), $(b,json) (one object per \
             technique) or $(b,csv).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Conformance mode: compare the observed message/step signature \
             of every selected technique against its §5 expectation; exit 1 \
             on any deviation (or causally unsound trace).")
  in
  let run technique directives n seed format check =
    let selected =
      match technique with
      | Some entry -> [ entry ]
      | None -> Protocols.Registry.all
    in
    let results =
      List.map
        (fun (entry : Protocols.Registry.entry) ->
          let cfg, factory = Cli.resolve entry directives in
          let shards = Cli.check_shards ~n cfg in
          (* A single-shard probe transaction runs entirely inside one
             replication group, so the §5 expectation applies at the group
             size, not the cluster size. *)
          let info =
            if shards <= 1 then entry.info
            else
              let g = Protocols.Sharded.probe_group_size ~n ~shards in
              {
                entry.info with
                Core.Technique.expected_messages =
                  (fun ~n:_ -> entry.info.Core.Technique.expected_messages ~n:g);
              }
          in
          let p = Workload.Builder.probe ~seed ~n factory in
          let msgs, sound, summary = Workload.Builder.probe_summary p in
          (entry.key, info, shards, msgs, sound, summary))
        selected
    in
    (match format with
    | `Csv ->
        print_endline explain_csv_header;
        List.iter
          (fun (key, info, shards, _, _, s) ->
            print_endline (explain_csv_row ~n ~shards ~seed key info s))
          results
    | `Json ->
        let technique_label, config =
          match technique with
          | Some entry ->
              let cfg, _ = Cli.resolve entry directives in
              (entry.key, Cli.config_pairs entry cfg)
          | None ->
              ( "all",
                List.map
                  (fun (d : Protocols.Config.directive) ->
                    (d.technique ^ "." ^ d.key, d.value))
                  directives )
        in
        print_endline
          (Workload.Report.header_json ~config ~seed
             ~technique:technique_label ~n_replicas:n ());
        List.iter
          (fun (key, info, shards, _, _, s) ->
            print_endline (explain_json ~n ~shards ~seed key info s))
          results
    | `Pretty ->
        List.iteri
          (fun i (key, info, shards, msgs, _, s) ->
            if i > 0 then Fmt.pr "@.";
            explain_pretty ~n ~shards key info msgs s)
          results);
    if check then begin
      let bad =
        List.filter
          (fun (_, info, _, _, sound, s) ->
            not (sound && explain_matches info ~n s))
          results
      in
      List.iter
        (fun (key, (info : Core.Technique.info), _, _, sound, s) ->
          Fmt.epr
            "explain --check: %s deviates: %d/%d messages, %d/%d steps \
             (observed/expected)%s@."
            key s.Sim.Msg_dag.messages (info.expected_messages ~n)
            s.Sim.Msg_dag.steps info.expected_steps
            (if sound then "" else "; trace not causally sound"))
        bad;
      if bad <> [] then exit 1
      else
        Fmt.pr "explain --check: %d technique(s) match the §5 expectations@."
          (List.length results)
    end
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ technique_opt $ Cli.directives_term $ Cli.replicas_arg ()
      $ seed $ format $ check)

(* ---- campaign ------------------------------------------------------- *)

let campaign_cmd =
  let doc =
    "Run the fault-injection campaign: sweep techniques over failure \
     scenarios and check every run against the per-technique invariant \
     oracles (1-copy serializability, convergence after heal/recover, \
     Figure-16 signature conformance, liveness). Exits non-zero if any \
     oracle verdict misses its expectation."
  in
  let scenario_names =
    String.concat ", "
      (List.map (fun s -> s.Workload.Scenario.name) Workload.Scenario.builtins)
  in
  let scenarios_arg =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Scenario to run: one of %s, a comma-separated list, or \
                $(b,all)."
               scenario_names))
  in
  let techniques_arg =
    Arg.(
      value & opt string "all"
      & info [ "techniques" ] ~docv:"KEYS"
          ~doc:
            (Printf.sprintf
               "Techniques to sweep: comma-separated registry keys (%s) or \
                $(b,all)."
               (String.concat ", " Protocols.Registry.keys)))
  in
  let seeds_arg =
    Arg.(
      value & opt (list int) [ 11 ]
      & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Random seeds to sweep.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit one CSV row per run instead of the table.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Also write one JSON object per run (counters + oracle \
             verdicts) to FILE ($(b,-) for stdout).")
  in
  let run scenario_sel technique_sel directives seeds n_replicas txns ops csv
      jsonl =
    let scenarios =
      match scenario_sel with
      | "all" -> Workload.Scenario.builtins
      | names ->
          List.map
            (fun name ->
              match Workload.Scenario.find name with
              | Some s -> s
              | None ->
                  Cli.fail "unknown scenario %S (known: %s)" name
                    scenario_names)
            (String.split_on_char ',' names)
    in
    let techniques =
      match technique_sel with
      | "all" -> Protocols.Registry.all
      | keys ->
          List.map
            (fun key ->
              match Protocols.Registry.find_res key with
              | Ok entry -> entry
              | Error msg -> Cli.fail "%s" msg)
            (String.split_on_char ',' keys)
    in
    let spec =
      {
        Workload.Scenario.default_spec with
        txns_per_client = txns;
        ops_per_txn = ops;
      }
    in
    let outcomes =
      Workload.Scenario.run_campaign ~seeds ~n_replicas ~spec
        ~techniques:
          (List.map
             (fun (entry : Protocols.Registry.entry) ->
               let cfg, factory = Cli.resolve entry directives in
               ignore (Cli.check_shards ~n:n_replicas cfg);
               (entry.key, entry.info, factory))
             techniques)
        ~scenarios ()
    in
    let campaign_header =
      Workload.Report.header_json
        ~seed:(match seeds with s :: _ -> s | [] -> 11)
        ~technique:technique_sel ~n_replicas
        ~config:
          (List.map
             (fun (d : Protocols.Config.directive) ->
               (d.technique ^ "." ^ d.key, d.value))
             directives)
        ~extra:
          [
            ( "seeds",
              "[" ^ String.concat "," (List.map string_of_int seeds) ^ "]" );
            ("scenarios", Printf.sprintf "%S" scenario_sel);
          ]
        ()
    in
    (match jsonl with
    | None -> ()
    | Some "-" ->
        print_endline campaign_header;
        List.iter
          (fun o -> print_endline (Workload.Scenario.jsonl_row o))
          outcomes
    | Some file ->
        let oc = open_out file in
        output_string oc campaign_header;
        output_char oc '\n';
        List.iter
          (fun o ->
            output_string oc (Workload.Scenario.jsonl_row o);
            output_char oc '\n')
          outcomes;
        close_out oc);
    if csv then Workload.Scenario.to_csv Fmt.stdout outcomes
    else
      List.iter
        (fun o -> Fmt.pr "%a@." Workload.Scenario.pp_outcome o)
        outcomes;
    let failed =
      List.filter (fun o -> not o.Workload.Scenario.ok) outcomes
    in
    if not csv then
      Fmt.pr "@.campaign: %d runs, %d failed oracle expectations@."
        (List.length outcomes) (List.length failed);
    if failed <> [] then exit 1
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ scenarios_arg $ techniques_arg $ Cli.directives_term
      $ seeds_arg $ Cli.replicas_arg () $ Cli.txns_arg ~default:25 ()
      $ Cli.ops_arg $ csv $ jsonl)

(* ---- metrics -------------------------------------------------------- *)

let metrics_cmd =
  let doc =
    "Run a workload against a technique and print its metrics registry \
     (counters, gauges, per-phase latency histograms)."
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the metrics snapshot as a JSON array.")
  in
  let run (entry : Protocols.Registry.entry) directives n m updates txns seed
      json =
    let updates = Cli.mix ?updates () in
    let cfg, factory = Cli.resolve entry directives in
    let shards = Cli.check_shards ~n cfg in
    let spec = Workload.Builder.spec ~updates ~txns ~shards () in
    let builder =
      Workload.Builder.make ~seed ~replicas:n ~clients:m ~spec ()
    in
    let result = Workload.Builder.run builder factory in
    if json then begin
      print_endline
        (Workload.Report.header_json
           ~config:(Cli.config_pairs entry cfg)
           ~seed ~technique:entry.key ~n_replicas:n ());
      print_endline (Sim.Metrics.snapshot_to_json result.Workload.Runner.metrics)
    end
    else begin
      Fmt.pr "technique : %s@." entry.key;
      Fmt.pr "result    : %a@.@." Workload.Runner.pp_result result;
      Workload.Report.phases_to_csv Fmt.stdout [ (entry.key, result) ];
      Fmt.pr "@.";
      Sim.Metrics.pp_snapshot Fmt.stdout result.Workload.Runner.metrics
    end
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ Cli.technique_arg $ Cli.directives_term
      $ Cli.replicas_arg () $ Cli.clients_arg () $ Cli.updates_arg
      $ Cli.txns_arg () $ Cli.seed_arg () $ json)

(* ---- timeline ------------------------------------------------------- *)

(* Column index of a virtual instant on a [cols]-wide axis ending at
   [t_end]. *)
let timeline_col ~cols ~t_end at =
  if t_end <= 0 then 0
  else min (cols - 1) (Sim.Simtime.to_us at * cols / t_end)

let sparkline ~cols ~t_end (s : Sim.Timeseries.series) =
  let ramp = " .:-=+*#@" in
  let buckets = Array.make cols 0. in
  List.iter
    (fun (p : Sim.Timeseries.point) ->
      let c = timeline_col ~cols ~t_end p.at in
      if p.value > buckets.(c) then buckets.(c) <- p.value)
    (Sim.Timeseries.points s);
  let mx = Array.fold_left Float.max 0. buckets in
  String.init cols (fun i ->
      if mx <= 0. then ' '
      else
        let idx = int_of_float (buckets.(i) /. mx *. 8.) in
        ramp.[max 0 (min 8 idx)])

(* One marker character per scheduled fault event: P/H for a partition
   and its heal, C/R for crash/recover, L for a loss window. *)
let fault_ruler ~cols ~t_end events =
  let line = Bytes.make cols ' ' in
  let mark at c =
    let i = timeline_col ~cols ~t_end at in
    Bytes.set line i c
  in
  List.iter
    (fun (event : Workload.Scenario.event) ->
      match event with
      | Workload.Scenario.Crash { at; _ } -> mark at 'C'
      | Workload.Scenario.Recover { at; _ } -> mark at 'R'
      | Workload.Scenario.Partition { at; heal_at; _ } ->
          mark at 'P';
          mark heal_at 'H'
      | Workload.Scenario.Loss { at; until; _ } ->
          mark at 'L';
          mark until 'l')
    events;
  Bytes.to_string line

(* Intervals during which a detector finding is expected (fault active,
   plus [grace] for the protocol to drain afterwards). An unrecovered
   crash stays in effect forever. *)
let fault_windows ~grace (events : Workload.Scenario.event list) =
  List.filter_map
    (fun (event : Workload.Scenario.event) ->
      match event with
      | Workload.Scenario.Crash { at; replica } ->
          let recover_at =
            List.find_map
              (fun (e : Workload.Scenario.event) ->
                match e with
                | Workload.Scenario.Recover { at = r_at; replica = r }
                  when r = replica && Sim.Simtime.(r_at > at) ->
                    Some r_at
                | _ -> None)
              events
          in
          Some
            ( at,
              match recover_at with
              | Some r -> Sim.Simtime.add r grace
              | None -> Sim.Simtime.infinity )
      | Workload.Scenario.Partition { at; heal_at; _ } ->
          Some (at, Sim.Simtime.add heal_at grace)
      | Workload.Scenario.Loss { at; until; _ } ->
          Some (at, Sim.Simtime.add until grace)
      | Workload.Scenario.Recover _ -> None)
    events

let in_some_window windows (f : Sim.Saturation.finding) =
  List.exists
    (fun (w_start, w_end) ->
      Sim.Simtime.(f.Sim.Saturation.at <= w_end)
      && Sim.Simtime.(w_start <= f.Sim.Saturation.until))
    windows

(* Group-stack backlogs that should visibly build while a partition cuts
   a member off and drain once it heals. *)
let backlog_names =
  [ "rchan_unacked"; "abcast_pending"; "abcast_undelivered"; "vscast_buffered" ]

(* The partition build-up/drain obligation: some group-stack queue must
   peak >= 2 inside the partition window and be back <= 1 by the end of
   the (quiesced) run. *)
let check_partition_backlog series events =
  let ranges =
    List.filter_map
      (fun (e : Workload.Scenario.event) ->
        match e with
        | Workload.Scenario.Partition { at; heal_at; _ } -> Some (at, heal_at)
        | _ -> None)
      events
  in
  match ranges with
  | [] -> Ok ()
  | (p_at, p_heal) :: _ -> (
      let candidates =
        List.filter
          (fun (s : Sim.Timeseries.series) ->
            s.kind = Sim.Timeseries.Queue && List.mem s.name backlog_names)
          series
      in
      match candidates with
      | [] -> Error "no group-stack queue series sampled"
      | _ ->
          let built_and_drained (s : Sim.Timeseries.series) =
            let pts = Sim.Timeseries.points s in
            let peak_in_window =
              List.fold_left
                (fun acc (p : Sim.Timeseries.point) ->
                  if Sim.Simtime.(p.at >= p_at) && Sim.Simtime.(p.at <= p_heal)
                  then Float.max acc p.value
                  else acc)
                0. pts
            in
            let final =
              match s.points_rev with [] -> 0. | p :: _ -> p.value
            in
            peak_in_window >= 2. && final <= 1.
          in
          if List.exists built_and_drained candidates then Ok ()
          else
            Error
              "no group-stack queue built up (>= 2) during the partition and \
               drained (<= 1) after heal")

let timeline_cmd =
  let doc =
    "Run a workload with the resource sampler on and render per-replica \
     gauge timelines (queue depths, lock waiters, 2PC in-doubt windows) \
     aligned with the injected fault events, plus any saturation-detector \
     findings. With $(b,--check), exit non-zero when a detector fires \
     outside a fault window, or when a partition scenario fails to show \
     the expected backlog build-up and post-heal drain."
  in
  let scenario_names =
    String.concat ", "
      (List.map (fun s -> s.Workload.Scenario.name) Workload.Scenario.builtins)
  in
  let scenario_arg =
    Arg.(
      value & opt string "partition-heal"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Fault scenario to inject: one of %s, or $(b,none) for a \
                healthy run."
               scenario_names))
  in
  let interval =
    Arg.(
      value & opt int 5
      & info [ "interval" ] ~docv:"MS" ~doc:"Sampling interval (virtual ms).")
  in
  let until =
    Arg.(
      value & opt int 2000
      & info [ "until" ] ~docv:"MS"
          ~doc:"Workload deadline (virtual ms; quiescence drain follows).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("json", `Json); ("csv", `Csv) ]) `Pretty
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,pretty) (sparklines), $(b,json) (JSONL: \
             header, one object per series, one per finding) or $(b,csv) \
             (long-format points).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit 1 when a saturation finding lies outside every fault \
             window, or a partition scenario shows no backlog \
             build-up/drain.")
  in
  let run (entry : Protocols.Registry.entry) directives scenario_sel n m txns
      seed interval_ms until_ms format check =
    let cfg, factory = Cli.resolve entry directives in
    let scenario =
      match scenario_sel with
      | "none" -> None
      | name -> (
          match Workload.Scenario.find name with
          | Some s -> Some s
          | None ->
              Cli.fail "unknown scenario %S (known: %s, none)" name
                scenario_names)
    in
    let events =
      match scenario with Some s -> s.Workload.Scenario.events | None -> []
    in
    let spec =
      { Workload.Scenario.default_spec with txns_per_client = txns }
    in
    let builder =
      Workload.Builder.make ~seed ~replicas:n ~clients:m ~spec ?scenario
        ~deadline:(Sim.Simtime.of_ms until_ms)
        ~sample:(Sim.Simtime.of_ms interval_ms)
        ()
    in
    let result = Workload.Builder.run builder factory in
    let series = result.Workload.Runner.series in
    let findings = Sim.Saturation.analyze series in
    let header =
      Workload.Report.header_json ~seed ~technique:entry.key ~n_replicas:n
        ~config:(Cli.config_pairs entry cfg)
        ~extra:
          [
            ("scenario", Printf.sprintf "%S" scenario_sel);
            ("interval_us", string_of_int (interval_ms * 1000));
          ]
        ()
    in
    (match format with
    | `Json ->
        print_endline header;
        List.iter
          (fun s -> print_endline (Sim.Timeseries.series_to_json s))
          series;
        List.iter
          (fun f -> print_endline (Sim.Saturation.finding_to_json f))
          findings
    | `Csv ->
        print_endline "metric,replica,kind,unit,at_us,value";
        List.iter
          (fun (s : Sim.Timeseries.series) ->
            List.iter
              (fun (p : Sim.Timeseries.point) ->
                Printf.printf "%s,%d,%s,%s,%d,%s\n"
                  (Workload.Report.csv_escape s.name)
                  s.replica
                  (Sim.Timeseries.kind_to_string s.kind)
                  s.unit_
                  (Sim.Simtime.to_us p.at)
                  (Sim.Metrics.json_float p.value))
              (Sim.Timeseries.points s))
          series
    | `Pretty ->
        let cols = 64 in
        let t_end =
          List.fold_left
            (fun acc (s : Sim.Timeseries.series) ->
              match s.points_rev with
              | p :: _ -> max acc (Sim.Simtime.to_us p.Sim.Timeseries.at)
              | [] -> acc)
            1 series
        in
        Fmt.pr "technique : %s   scenario : %s   seed : %d@." entry.key
          scenario_sel seed;
        Fmt.pr "result    : %a@." Workload.Runner.pp_result result;
        Fmt.pr "axis      : 0 .. %.0f ms, sampled every %d ms@."
          (float_of_int t_end /. 1000.)
          interval_ms;
        if events <> [] then
          Fmt.pr "%-28s|%s| C=crash R=recover P=partition H=heal L=loss@."
            "faults" (fault_ruler ~cols ~t_end events);
        let shown = ref 0 in
        List.iter
          (fun (s : Sim.Timeseries.series) ->
            if Sim.Timeseries.max_value s > 0. then begin
              incr shown;
              let who =
                if s.replica < 0 then "all"
                else if s.replica >= n then Printf.sprintf "c%d" (s.replica - n)
                else Printf.sprintf "r%d" s.replica
              in
              Fmt.pr "%-24s %-3s|%s| max=%g@." s.name who
                (sparkline ~cols ~t_end s)
                (Sim.Timeseries.max_value s)
            end)
          series;
        Fmt.pr "(%d series sampled, %d non-zero shown)@." (List.length series)
          !shown;
        List.iter
          (fun f -> Fmt.pr "finding   : %a@." Sim.Saturation.pp_finding f)
          findings);
    if check then begin
      let windows = fault_windows ~grace:(Sim.Simtime.of_ms 300) events in
      let stray =
        List.filter (fun f -> not (in_some_window windows f)) findings
      in
      List.iter
        (fun f ->
          Fmt.epr "timeline --check: finding outside any fault window: %a@."
            Sim.Saturation.pp_finding f)
        stray;
      let backlog =
        match check_partition_backlog series events with
        | Ok () -> true
        | Error msg ->
            Fmt.epr "timeline --check: %s@." msg;
            false
      in
      if stray <> [] || not backlog then exit 1
      else
        Fmt.pr
          "timeline --check: OK (%d series, %d findings, all inside fault \
           windows)@."
          (List.length series) (List.length findings)
    end
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(
      const run $ Cli.technique_arg $ Cli.directives_term $ scenario_arg
      $ Cli.replicas_arg () $ Cli.clients_arg ~default:2 ()
      $ Cli.txns_arg ~default:25 () $ Cli.seed_arg () $ interval $ until
      $ format $ check)

(* ---- profile -------------------------------------------------------- *)

let profile_csv_header =
  "label,events,wall_ms,wall_share,alloc_words,alloc_share"

let profile_cmd =
  let doc =
    "Profile the simulator itself: run a workload with the engine's \
     self-profiler attached and report where the simulator's wall time and \
     allocation go, per handler label (network delivery, client arrivals, \
     protocol timers, sampling), plus event-loop statistics and the \
     measured cost of the observability stack (spans, samples, trace \
     bytes)."
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Show the top N buckets by self time (text format only).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (top-N table), $(b,json) (one profile \
             object) or $(b,csv) (one row per bucket).")
  in
  let no_tracing =
    Arg.(
      value & flag
      & info [ "no-tracing" ]
          ~doc:
            "Switch span/trace recording off for the run — profiles the \
             bare engine; compare against a default run to price the \
             observability stack.")
  in
  let sample =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample" ] ~docv:"MS"
          ~doc:"Also run the resource sampler at this virtual-ms interval.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-test: re-parse the profile JSON, verify per-bucket event \
             counts sum to the events executed and that wall/alloc shares \
             sum to ~1.0; exit 1 on failure.")
  in
  let run (entry : Protocols.Registry.entry) directives n m updates txns seed
      top format no_tracing sample check =
    let updates = Cli.mix ?updates () in
    let _cfg, factory = Cli.resolve entry directives in
    let spec = Workload.Builder.spec ~updates ~txns () in
    let profiler = Sim.Profiler.create () in
    let builder =
      Workload.Builder.make ~seed ~replicas:n ~clients:m ~spec ~profiler
        ~tracing:(not no_tracing)
        ?sample:(Option.map Sim.Simtime.of_ms sample)
        ()
    in
    let result, inst = Workload.Builder.run_with_instance builder factory in
    (* Price the trace export itself (only meaningful with tracing on):
       the serialized bytes count into the profile's meta counters and
       the export wall/alloc cost lands in its own bucket. *)
    if not no_tracing then begin
      let jsonl =
        Sim.Profiler.measure profiler ~label:"trace:export" (fun () ->
            Sim.Trace_export.to_jsonl
              (Core.Phase_span.collector inst.Core.Technique.spans))
      in
      Sim.Profiler.add_trace_bytes profiler (String.length jsonl)
    end;
    let report = Sim.Profiler.report profiler in
    let json () =
      Sim.Profiler.report_to_json
        ~extra:
          [
            ("technique", Printf.sprintf "%S" entry.key);
            ("seed", string_of_int seed);
            ("n_replicas", string_of_int n);
            ("tracing", string_of_bool (not no_tracing));
          ]
        report
    in
    (match format with
    | `Json -> print_endline (json ())
    | `Csv ->
        print_endline profile_csv_header;
        List.iter
          (fun (r : Sim.Profiler.row) ->
            Printf.printf "%s,%d,%.3f,%.4f,%.0f,%.4f\n"
              (Workload.Report.csv_escape r.r_label)
              r.r_events r.r_wall_ms r.r_wall_share r.r_alloc_w r.r_alloc_share)
          report.Sim.Profiler.p_buckets
    | `Text ->
        Fmt.pr "technique : %s   seed : %d   n : %d   tracing : %b@." entry.key
          seed n (not no_tracing);
        Fmt.pr "result    : %a@." Workload.Runner.pp_result result;
        Fmt.pr "engine    : %s@." (Workload.Report.engine_summary result);
        Fmt.pr
          "loop      : %d scheduled, %d cancelled-discarded, queue peak %d@."
          report.Sim.Profiler.p_scheduled report.Sim.Profiler.p_cancelled
          report.Sim.Profiler.p_queue_peak;
        Fmt.pr
          "memory    : %.0f words allocated in events, heap peak %d words@."
          report.Sim.Profiler.p_alloc_words
          report.Sim.Profiler.p_heap_peak_words;
        Fmt.pr "meta      : %d spans, %d samples, %d trace bytes@."
          report.Sim.Profiler.p_spans_created
          report.Sim.Profiler.p_samples_taken report.Sim.Profiler.p_trace_bytes;
        let by_wall =
          List.sort
            (fun (a : Sim.Profiler.row) (b : Sim.Profiler.row) ->
              compare b.r_wall_ms a.r_wall_ms)
            report.Sim.Profiler.p_buckets
        in
        Fmt.pr "@.top %d of %d buckets by self time:@." top
          (List.length by_wall);
        Fmt.pr "%-18s %12s %13s %6s %14s %6s@." "label" "events" "wall" "" ""
          "alloc";
        List.iteri
          (fun i r ->
            if i < top then Fmt.pr "%a@." Sim.Profiler.pp_row r)
          by_wall);
    if check then begin
      let parsed = Workload.Bench_out.parse (json ()) in
      let fail msg =
        Fmt.epr "profile --check: %s@." msg;
        exit 1
      in
      match parsed with
      | Error e -> fail ("profile JSON does not parse: " ^ e)
      | Ok _ ->
          (* The trace:export bucket is an off-loop [measure], not an
             engine event — the executed-events identity excludes it. *)
          let bucket_events =
            List.fold_left
              (fun acc (r : Sim.Profiler.row) ->
                if r.r_label = "trace:export" then acc else acc + r.r_events)
              0 report.Sim.Profiler.p_buckets
          in
          if bucket_events <> report.Sim.Profiler.p_events then
            fail
              (Printf.sprintf "bucket events %d <> events executed %d"
                 bucket_events report.Sim.Profiler.p_events);
          let share_sum f =
            List.fold_left
              (fun acc r -> acc +. f r)
              0. report.Sim.Profiler.p_buckets
          in
          let wall_sum = share_sum (fun r -> r.Sim.Profiler.r_wall_share) in
          let alloc_sum = share_sum (fun r -> r.Sim.Profiler.r_alloc_share) in
          let ok_sum label total sum =
            (* All-zero shares are legitimate when nothing of that
               resource was measured (sub-microsecond runs). *)
            if total <= 0. then ()
            else if Float.abs (sum -. 1.0) > 0.02 then
              fail (Printf.sprintf "%s shares sum to %.4f, not ~1.0" label sum)
          in
          ok_sum "wall" report.Sim.Profiler.p_self_wall_s wall_sum;
          ok_sum "alloc" report.Sim.Profiler.p_alloc_words alloc_sum;
          (* stderr: --check must not pollute machine-readable stdout. *)
          Fmt.epr
            "profile --check: OK (%d buckets, %d events attributed, shares \
             wall=%.3f alloc=%.3f)@."
            (List.length report.Sim.Profiler.p_buckets)
            report.Sim.Profiler.p_events wall_sum alloc_sum
    end
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ Cli.technique_arg $ Cli.directives_term
      $ Cli.replicas_arg () $ Cli.clients_arg () $ Cli.updates_arg
      $ Cli.txns_arg () $ Cli.seed_arg () $ top $ format $ no_tracing
      $ sample $ check)

(* ---- bench-check ---------------------------------------------------- *)

(* ---- audit ---------------------------------------------------------- *)

let audit_cmd =
  let doc =
    "Measure client-visible consistency per technique: visibility latency \
     (how long other replicas stay stale for each committed write), \
     real-time stale reads, session-guarantee violations (read-your-writes, \
     monotonic reads), residual version lag, and — on sharded \
     configurations — cross-shard snapshot skew."
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("json", `Json); ("csv", `Csv) ]) `Pretty
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: pretty, json or csv.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero unless every technique drains its version lag, \
             eager techniques measure a zero session-order inconsistency \
             window (no read-your-writes or monotonic-reads violations), \
             and lazy techniques measure a strictly positive post-commit \
             staleness window.")
  in
  let run technique directives n m updates reads txns ops keys skew cross seed
      router sticky shape flash fmt check =
    let updates = Cli.mix ?updates ?reads () in
    let entries =
      match technique with Some e -> [ e ] | None -> Protocols.Registry.all
    in
    let rows =
      List.map
        (fun (entry : Protocols.Registry.entry) ->
          let cfg, factory = Cli.resolve entry directives in
          let shards = Cli.check_shards ~n cfg in
          if cross > 0. && shards <= 1 then
            Cli.fail
              "--cross needs a sharded technique; add --set %s.shards=K (K >= 2)"
              entry.key;
          if cross > 0. && ops < 2 then
            Cli.fail "--cross needs multi-op transactions; add --ops 2 (or more)";
          let spec =
            Workload.Builder.spec ~keys ~skew ~updates ~ops ~txns ~shards
              ~cross ~shape ?flash:(Cli.flash_spec flash) ()
          in
          let builder =
            Workload.Builder.make ~seed ~replicas:n ~clients:m ~spec
              ~sample:(Sim.Simtime.of_ms 5) ~audit:true
              ?router:(Cli.router_config ~router ~sticky) ()
          in
          let result = Workload.Builder.run builder factory in
          let a = Option.get result.Workload.Runner.audit in
          (entry, shards, a))
        entries
    in
    let propagation_of (entry : Protocols.Registry.entry) =
      match entry.info.Core.Technique.propagation with
      | Core.Technique.Eager -> "eager"
      | Core.Technique.Lazy -> "lazy"
    in
    let max_lag (a : Workload.Audit.summary) =
      List.fold_left (fun acc (_, l) -> Stdlib.max acc l) 0 a.final_lag
    in
    (* The gate: the measured form of the paper's §4 windows. Eager =
       agreement before the reply, so the session-order inconsistency
       window must be exactly zero; lazy = propagation after the reply,
       so the post-commit window must be strictly positive — and finite,
       i.e. fully drained by quiescence. Sub-millisecond real-time
       staleness under an eager technique (a local read racing the
       decision round) is reported but not gated: it is serializable
       before the write, hence invisible to the paper's 1SR criterion. *)
    let problems (entry : Protocols.Registry.entry) shards
        (a : Workload.Audit.summary) =
      let eager =
        entry.info.Core.Technique.propagation = Core.Technique.Eager
      in
      (if a.drained then []
       else
         [
           Printf.sprintf "version lag never drained (max residual %d)"
             (max_lag a);
         ])
      @ (if eager && (a.ryw_violations > 0 || a.mr_violations > 0) then
           [
             Printf.sprintf
               "eager technique with a non-zero inconsistency window: %d \
                read-your-writes + %d monotonic-reads violations (window \
                %.3f ms)"
               a.ryw_violations a.mr_violations a.session_window_max_ms;
           ]
         else [])
      @ (if (not eager) && a.post_commit_max_ms <= 0. then
           [
             "lazy technique measured no post-commit staleness window \
              (propagation should run after the reply)";
           ]
         else [])
      @
      if shards = 1 && a.skew_pairs <> 0 then
        [
          Printf.sprintf
            "%d snapshot-skew pairs at shards=1 (must be impossible)"
            a.skew_pairs;
        ]
      else []
    in
    (match fmt with
    | `Pretty ->
        Fmt.pr
          "%-18s %-6s %8s %7s %20s %11s %9s %6s %5s %5s %5s %4s %8s@."
          "technique" "prop" "commits" "writes" "visibility p50/p95(ms)"
          "postcmt(ms)" "sess(ms)" "stale" "ryw" "mr" "skew" "lag" "drained";
        List.iter
          (fun ((entry : Protocols.Registry.entry), _, (a : Workload.Audit.summary)) ->
            Fmt.pr
              "%-18s %-6s %8d %7d %10.2f/%9.2f %11.2f %9.3f %6d %5d %5d %5d \
               %4d %8b@."
              entry.key (propagation_of entry) a.commits a.writes
              a.visibility_ms.Workload.Stats.p50
              a.visibility_ms.Workload.Stats.p95 a.post_commit_max_ms
              a.session_window_max_ms a.stale_reads a.ryw_violations
              a.mr_violations a.skew_pairs (max_lag a) a.drained)
          rows;
        Fmt.pr
          "@.Reading: postcmt is the propagation window after the commit \
           reply (the@.lazy staleness window; ~0 for eager), sess the \
           largest staleness behind a@.session-guarantee violation (must \
           be 0 for eager), stale counts reads that@.missed an already- \
           acknowledged write anywhere (sub-ms races are 1SR-legal).@."
    | `Csv ->
        Fmt.pr
          "technique,propagation,n,shards,seed,commits,reads_checked,writes,\
           fully_replicated,vis_count,vis_mean_ms,vis_p50_ms,vis_p95_ms,\
           vis_p99_ms,vis_max_ms,post_commit_max_ms,session_window_max_ms,\
           stale_reads,staleness_max_ms,ryw_violations,mr_violations,\
           skew_pairs,cross_txns,max_lag,drained@.";
        List.iter
          (fun ((entry : Protocols.Registry.entry), shards, (a : Workload.Audit.summary)) ->
            Fmt.pr
              "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,\
               %.3f,%d,%.3f,%d,%d,%d,%d,%d,%b@."
              entry.key (propagation_of entry) n shards seed a.commits
              a.reads_checked a.writes a.fully_replicated
              a.visibility_ms.Workload.Stats.count
              a.visibility_ms.Workload.Stats.mean
              a.visibility_ms.Workload.Stats.p50
              a.visibility_ms.Workload.Stats.p95
              a.visibility_ms.Workload.Stats.p99
              a.visibility_ms.Workload.Stats.max a.post_commit_max_ms
              a.session_window_max_ms a.stale_reads
              a.staleness_ms.Workload.Stats.max a.ryw_violations
              a.mr_violations a.skew_pairs a.cross_txns (max_lag a) a.drained)
          rows
    | `Json ->
        List.iter
          (fun ((entry : Protocols.Registry.entry), shards, (a : Workload.Audit.summary)) ->
            let jf = Sim.Metrics.json_float in
            Fmt.pr
              "{\"type\":\"audit\",\"technique\":\"%s\",\"propagation\":\"%s\",\
               \"n\":%d,\"shards\":%d,\"seed\":%d,\"commits\":%d,\
               \"reads_checked\":%d,\"writes\":%d,\"fully_replicated\":%d,\
               \"visibility_ms\":{\"count\":%d,\"mean\":%s,\"p50\":%s,\
               \"p95\":%s,\"p99\":%s,\"max\":%s},\"post_commit_max_ms\":%s,\
               \"session_window_max_ms\":%s,\"stale_reads\":%d,\
               \"staleness_max_ms\":%s,\"ryw_violations\":%d,\
               \"mr_violations\":%d,\"skew_pairs\":%d,\"cross_txns\":%d,\
               \"final_lag\":[%s],\"drained\":%b}@."
              (Sim.Metrics.json_escape entry.key)
              (propagation_of entry) n shards seed a.commits a.reads_checked
              a.writes a.fully_replicated a.visibility_ms.Workload.Stats.count
              (jf a.visibility_ms.Workload.Stats.mean)
              (jf a.visibility_ms.Workload.Stats.p50)
              (jf a.visibility_ms.Workload.Stats.p95)
              (jf a.visibility_ms.Workload.Stats.p99)
              (jf a.visibility_ms.Workload.Stats.max)
              (jf a.post_commit_max_ms)
              (jf a.session_window_max_ms)
              a.stale_reads
              (jf a.staleness_ms.Workload.Stats.max)
              a.ryw_violations a.mr_violations a.skew_pairs a.cross_txns
              (String.concat ","
                 (List.map
                    (fun (r, l) ->
                      Printf.sprintf "{\"replica\":%d,\"lag\":%d}" r l)
                    a.final_lag))
              a.drained)
          rows);
    if check then begin
      let bad = ref 0 in
      List.iter
        (fun (entry, shards, a) ->
          match problems entry shards a with
          | [] -> ()
          | msgs ->
              incr bad;
              List.iter
                (fun msg ->
                  Fmt.epr "audit: %s: %s@." entry.Protocols.Registry.key msg)
                msgs)
        rows;
      if !bad > 0 then exit 1;
      Fmt.pr "audit: OK (%d technique%s)@." (List.length rows)
        (if List.length rows = 1 then "" else "s")
    end
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run
      $ Cli.technique_opt
          ~doc:"Technique to audit (default: all techniques)."
      $ Cli.directives_term $ Cli.replicas_arg () $ Cli.clients_arg ()
      $ Cli.updates_arg $ Cli.reads_arg $ Cli.txns_arg () $ Cli.ops_arg
      $ Cli.keys_arg $ Cli.skew_arg $ Cli.cross_arg $ Cli.seed_arg ()
      $ Cli.router_arg $ Cli.sticky_arg $ Cli.shape_arg $ Cli.flash_arg
      $ format_arg $ check_arg)

(* ---- sweep ----------------------------------------------------------- *)

(* "closed" (or "0") = closed loop; otherwise an open-loop Poisson rate. *)
let load_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "closed" | "0" -> Ok 0.
    | s -> (
        match float_of_string_opt s with
        | Some r when r > 0. -> Ok r
        | _ ->
            Error (`Msg "expected a positive arrival rate (txn/s) or 'closed'"))
  in
  let print ppf l =
    if l <= 0. then Format.pp_print_string ppf "closed"
    else Format.fprintf ppf "%g" l
  in
  Arg.conv (parse, print)

(* TECH.KEY=V1,V2,... — a per-technique configuration axis. Technique
   and key are validated against the registry up front, like --set. *)
let vary_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg "expected TECH.KEY=V1,V2,...")
    | Some i -> (
        let lhs = String.sub s 0 i in
        let rhs = String.sub s (i + 1) (String.length s - i - 1) in
        match String.index_opt lhs '.' with
        | None -> Error (`Msg "expected TECH.KEY=V1,V2,...")
        | Some j -> (
            let technique = String.sub lhs 0 j in
            let key = String.sub lhs (j + 1) (String.length lhs - j - 1) in
            let values = String.split_on_char ',' rhs in
            if values = [] || List.exists (fun v -> v = "") values then
              Error (`Msg "expected at least one non-empty value")
            else
              match Protocols.Registry.find_res technique with
              | Error msg -> Error (`Msg msg)
              | Ok entry -> (
                  match Protocols.Config.find_key entry.schema key with
                  | Some _ -> Ok (technique, key, values)
                  | None ->
                      Error
                        (`Msg
                          (Printf.sprintf
                             "unknown config key %S for %s (valid keys: %s)"
                             key entry.key
                             (String.concat ", "
                                (Protocols.Config.keys entry.schema)))))))
  in
  let print ppf (t, k, vs) =
    Format.fprintf ppf "%s.%s=%s" t k (String.concat "," vs)
  in
  Arg.conv (parse, print)

let sweep_cmd =
  let doc =
    "Run a declared grid — techniques × shards × load × update-ratio × \
     zipf skew × seeds, plus any $(b,--vary) technique-config axis — \
     through the shared workload path, write one canonical run record per \
     cell plus an aggregate manifest into $(b,--out), and render the \
     record set as an ASCII heatmap or Markdown matrix over any record \
     metric: the paper's Figure-6 technique × workload study, measured. \
     Feed the output directory to $(b,replisim compare) to gate \
     regressions against a committed baseline."
  in
  let techniques_arg =
    Arg.(
      value & opt string "all"
      & info [ "techniques" ] ~docv:"KEYS"
          ~doc:
            (Printf.sprintf
               "Techniques to sweep: comma-separated registry keys (%s) or \
                $(b,all)."
               (String.concat ", " Protocols.Registry.keys)))
  in
  let shards_arg =
    Arg.(
      value & opt (list int) [ 1 ]
      & info [ "shards" ] ~docv:"K1,K2,..."
          ~doc:"Shard-count axis (1 = unsharded).")
  in
  let loads_arg =
    Arg.(
      value
      & opt (list load_conv) [ 0. ]
      & info [ "loads" ] ~docv:"L1,L2,..."
          ~doc:
            "Arrival-load axis: $(b,closed) for the closed loop, or an \
             open-loop Poisson rate in txn/s (e.g. $(b,closed,200,1000)).")
  in
  let updates_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "updates" ] ~docv:"R1,R2,..."
          ~doc:
            "Update-ratio (write-fraction) axis (default 0.5; mutually \
             exclusive with $(b,--reads)).")
  in
  let reads_axis_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "reads" ] ~docv:"R1,R2,..."
          ~doc:
            "Read-fraction axis — shorthand for $(b,--updates) with each \
             value mapped to 1 - RATIO; mutually exclusive with it.")
  in
  let zipfs_arg =
    Arg.(
      value & opt (list float) [ 0.6 ]
      & info [ "zipf" ] ~docv:"T1,T2,..."
          ~doc:"Zipf key-popularity skew axis (0 = uniform).")
  in
  let seeds_arg =
    Arg.(
      value & opt (list int) [ 11 ]
      & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Random-seed axis.")
  in
  let vary_arg =
    Arg.(
      value & opt_all vary_conv []
      & info [ "vary" ] ~docv:"TECH.KEY=V1,V2"
          ~doc:
            "Sweep one technique parameter as an axis, e.g. $(b,--vary \
             active.batch_window=0ms,5ms) (repeatable). Applies only to \
             cells of the named technique; other techniques keep the \
             default.")
  in
  let out_arg =
    Arg.(
      value & opt string "_sweep"
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Directory for the per-cell run records and the \
             $(b,manifest.json) aggregate (created if missing).")
  in
  let cell_arg =
    Arg.(
      value
      & opt_all string [ "latency_p95" ]
      & info [ "cell" ] ~docv:"METRIC"
          ~doc:
            (Printf.sprintf
               "Record metric to render as the matrix cell value \
                (repeatable). One of: %s."
               (String.concat ", " Workload.Run_record.metric_names)))
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("md", `Md); ("none", `None) ]) `Ascii
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Matrix rendering: $(b,ascii) (heatmap-shaded table), $(b,md) \
             (Markdown matrix) or $(b,none) (records and manifest only).")
  in
  let run technique_sel directives n m txns ops keys cross shards loads
      updates reads zipfs seeds vary router sticky shape flash out
      cell_metrics format =
    let updates =
      match (updates, reads) with
      | Some _, Some _ ->
          Cli.fail "--updates and --reads are mutually exclusive"
      | Some us, None -> us
      | None, Some rs ->
          List.map
            (fun r ->
              if r < 0. || r > 1. then
                Cli.fail "--reads values must be in [0,1], got %g" r;
              1. -. r)
            rs
      | None, None -> [ 0.5 ]
    in
    let techniques =
      match technique_sel with
      | "all" -> Protocols.Registry.all
      | keys ->
          List.map
            (fun key ->
              match Protocols.Registry.find_res key with
              | Ok entry -> entry
              | Error msg -> Cli.fail "%s" msg)
            (String.split_on_char ',' keys)
    in
    List.iter
      (fun k ->
        if not (List.mem k Workload.Run_record.metric_names) then
          Cli.fail "unknown --cell metric %S (known: %s)" k
            (String.concat ", " Workload.Run_record.metric_names))
      cell_metrics;
    let axes =
      {
        Workload.Sweep.techniques =
          List.map (fun (e : Protocols.Registry.entry) -> e.key) techniques;
        shards;
        loads;
        updates;
        zipfs;
        seeds;
        vary;
      }
    in
    let cells = Workload.Sweep.cells axes in
    if cells = [] then Cli.fail "empty sweep grid";
    if not (Sys.file_exists out) then Sys.mkdir out 0o755
    else if not (Sys.is_directory out) then
      Cli.fail "--out %s exists and is not a directory" out;
    let total = List.length cells in
    let records =
      List.mapi
        (fun i (c : Workload.Sweep.cell) ->
          let entry =
            match Protocols.Registry.find_res c.technique with
            | Ok e -> e
            | Error msg -> Cli.fail "%s" msg
          in
          let pairs =
            Protocols.Config.pairs_for ~technique:entry.key directives
            @ (if c.shards > 1 then [ ("shards", string_of_int c.shards) ]
               else [])
            @ c.vary
          in
          let cfg, factory =
            match Protocols.Registry.configure entry pairs with
            | Ok x -> x
            | Error msg -> Cli.fail "cell %s: %s" c.technique msg
          in
          ignore (Cli.check_shards ~n cfg);
          let spec =
            Workload.Builder.spec ~keys ~skew:c.zipf ~updates:c.updates ~ops
              ~txns ~shards:c.shards ~cross ~shape
              ?flash:(Cli.flash_spec flash) ()
          in
          let arrival = Workload.Sweep.arrival_of_cell c in
          let builder =
            Workload.Builder.make ~seed:c.seed ~replicas:n ~clients:m ~spec
              ~arrival
              ~sample:(Sim.Simtime.of_ms 5)
              ~audit:true
              ?router:(Cli.router_config ~router ~sticky) ()
          in
          let result = Workload.Builder.run builder factory in
          let record =
            make_record ~entry ~cfg ~factory ~seed:c.seed ~n ~m ~arrival ~spec
              result
          in
          let path = Workload.Run_record.save ~dir:out record in
          Fmt.epr "sweep: [%d/%d] %s@." (i + 1) total
            (Workload.Run_record.cell_id record);
          (Filename.basename path, record))
        cells
    in
    let manifest =
      Workload.Sweep.manifest_json axes ~records ~metrics:cell_metrics
    in
    let oc = open_out (Filename.concat out "manifest.json") in
    output_string oc manifest;
    output_char oc '\n';
    close_out oc;
    (match format with
    | `None -> ()
    | (`Ascii | `Md) as fmt ->
        List.iteri
          (fun i metric ->
            if i > 0 then print_newline ();
            let m = Workload.Sweep.matrix ~metric (List.map snd records) in
            print_string
              (match fmt with
              | `Ascii -> Workload.Sweep.render_ascii m
              | `Md -> Workload.Sweep.render_markdown m))
          cell_metrics);
    Fmt.epr "sweep: %d records + manifest.json written to %s/@." total out
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ techniques_arg $ Cli.directives_term $ Cli.replicas_arg ()
      $ Cli.clients_arg () $ Cli.txns_arg ~default:25 () $ Cli.ops_arg
      $ Cli.keys_arg $ Cli.cross_arg $ shards_arg $ loads_arg $ updates_arg
      $ reads_axis_arg $ zipfs_arg $ seeds_arg $ vary_arg $ Cli.router_arg
      $ Cli.sticky_arg $ Cli.shape_arg $ Cli.flash_arg $ out_arg $ cell_arg
      $ format_arg)

(* ---- compare --------------------------------------------------------- *)

(* A record set: a single run-record file, or a directory of them (a
   sweep output or a committed baseline; manifest.json is skipped). *)
let load_record_set path =
  let load file =
    match Workload.Run_record.load_file file with
    | Ok r -> r
    | Error msg -> Cli.fail "%s: %s" file msg
  in
  if not (Sys.file_exists path) then Cli.fail "%s: no such file or directory" path;
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f ->
           Filename.check_suffix f ".json" && f <> "manifest.json")
    |> List.map (fun f -> load (Filename.concat path f))
  else [ load path ]

(* METRIC:VALUE, shared by --threshold (relative fraction) and --perturb
   (multiplier). *)
let metric_value_conv ~what =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "expected METRIC:%s" what))
    | Some i -> (
        let metric = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt v with
        | Some v when metric <> "" -> Ok (metric, v)
        | _ -> Error (`Msg (Printf.sprintf "expected METRIC:%s" what)))
  in
  let print ppf (m, v) = Format.fprintf ppf "%s:%g" m v in
  Arg.conv (parse, print)

let compare_cmd =
  let doc =
    "Diff two run-record sets — run-vs-run, or a sweep directory against a \
     committed baseline directory — under per-metric relative thresholds. \
     Each (cell, metric) pair is classified improved, regressed or \
     unchanged; the command exits non-zero on any regression or missing \
     baseline cell, which is how perf and msgs/txn regressions gate CI. \
     Cells are matched by their identity (technique, configuration, \
     workload, seed), so records may be renamed freely."
  in
  let base_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE"
          ~doc:"Baseline record file or directory (e.g. $(b,baseline/)).")
  in
  let cand_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE"
          ~doc:"Candidate record file or directory (e.g. a fresh sweep).")
  in
  let thresholds_arg =
    Arg.(
      value
      & opt_all (metric_value_conv ~what:"RATIO") []
      & info [ "threshold" ] ~docv:"METRIC:RATIO"
          ~doc:
            "Override or add one comparison rule: relative threshold as a \
             fraction, e.g. $(b,--threshold latency_p95:0.3) tolerates \
             30%. Direction is inferred from the metric name (throughput- \
             like metrics are higher-better, everything else \
             lower-better). Defaults: latency_p50/p95 20%, latency_p99 \
             25%, throughput 20%, msgs_per_txn 10%.")
  in
  let perturb_arg =
    Arg.(
      value
      & opt_all (metric_value_conv ~what:"FACTOR") []
      & info [ "perturb" ] ~docv:"METRIC:FACTOR"
          ~doc:
            "Self-test knob: multiply METRIC in every candidate record by \
             FACTOR before comparing (e.g. $(b,--perturb \
             latency_p95:1.5) injects a 50% latency regression). CI uses \
             this to prove the gate actually trips.")
  in
  let run base_path cand_path thresholds perturb =
    let rules =
      List.fold_left
        (fun rules (metric, threshold) ->
          Workload.Compare.rule ~threshold metric
          :: List.filter
               (fun (r : Workload.Compare.rule) -> r.metric <> metric)
               rules)
        Workload.Compare.default_rules thresholds
    in
    let flat perturbed records =
      List.map
        (fun r ->
          let metrics = Workload.Run_record.metrics r in
          let metrics =
            if not perturbed then metrics
            else
              List.map
                (fun (name, v) ->
                  match List.assoc_opt name perturb with
                  | Some factor -> (name, v *. factor)
                  | None -> (name, v))
                metrics
          in
          (Workload.Run_record.cell_id r, metrics))
        records
    in
    let base = flat false (load_record_set base_path) in
    let cand = flat true (load_record_set cand_path) in
    let report = Workload.Compare.compare_sets ~rules ~base ~cand () in
    Fmt.pr "%a" Workload.Compare.pp_report report;
    if not (Workload.Compare.ok report) then exit 1
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ base_arg $ cand_arg $ thresholds_arg $ perturb_arg)

let bench_check_cmd =
  let doc =
    "Validate BENCH_*.json files written by the bench suite against the \
     machine-readable schema (type/version/bench/seed/n_replicas plus \
     non-empty results with metric/technique/unit/params/value). Exits \
     non-zero on the first malformed file."
  in
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"BENCH_*.json files to validate.")
  in
  (* BENCH:METRIC:MIN, e.g. perf15:events_per_sec:50000 *)
  let floor_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ bench; metric; min_s ] -> (
          match float_of_string_opt min_s with
          | Some min_value when bench <> "" && metric <> "" ->
              Ok (bench, metric, min_value)
          | _ -> Error (`Msg "expected BENCH:METRIC:MIN with numeric MIN")
      )
      | _ -> Error (`Msg "expected BENCH:METRIC:MIN, e.g. perf15:events_per_sec:50000")
    in
    let print ppf (b, m, v) = Format.fprintf ppf "%s:%s:%g" b m v in
    Arg.conv (parse, print)
  in
  let floors =
    Arg.(
      value & opt_all floor_conv []
      & info [ "floor" ] ~docv:"BENCH:METRIC:MIN"
          ~doc:
            "Require the best value of METRIC in BENCH's file to be at \
             least MIN (repeatable) — the CI throughput gate, e.g. \
             $(b,--floor perf15:events_per_sec:50000).")
  in
  let ceilings =
    Arg.(
      value & opt_all floor_conv []
      & info [ "ceiling" ] ~docv:"BENCH:METRIC:MAX"
          ~doc:
            "Require the worst value of METRIC in BENCH's file to be at \
             most MAX (repeatable) — the floor's mirror, for metrics where \
             growth is the regression, e.g. $(b,--ceiling \
             perf18:worst_msgs_per_txn:50).")
  in
  let run files floors ceilings =
    let bad = ref 0 in
    List.iter
      (fun path ->
        match Workload.Bench_out.validate_file path with
        | Error msg ->
            incr bad;
            Fmt.epr "bench-check: %s: %s@." path msg
        | Ok () -> (
            Fmt.pr "bench-check: %s OK@." path;
            let contents = In_channel.with_open_bin path In_channel.input_all in
            match Workload.Bench_out.parse (String.trim contents) with
            | Error _ -> () (* already validated; unreachable *)
            | Ok doc ->
                let bench =
                  match doc with
                  | Workload.Bench_out.Obj fields -> (
                      match List.assoc_opt "bench" fields with
                      | Some (Workload.Bench_out.Str b) -> b
                      | _ -> "")
                  | _ -> ""
                in
                List.iter
                  (fun (b, metric, min_value) ->
                    if b = bench then
                      match
                        Workload.Bench_out.check_floor doc ~metric ~min_value
                      with
                      | Ok best ->
                          Fmt.pr
                            "bench-check: %s floor %s>=%g OK (best %g)@."
                            path metric min_value best
                      | Error msg ->
                          incr bad;
                          Fmt.epr "bench-check: %s: %s@." path msg)
                  floors;
                List.iter
                  (fun (b, metric, max_value) ->
                    if b = bench then
                      match
                        Workload.Bench_out.check_ceiling doc ~metric ~max_value
                      with
                      | Ok worst ->
                          Fmt.pr
                            "bench-check: %s ceiling %s<=%g OK (worst %g)@."
                            path metric max_value worst
                      | Error msg ->
                          incr bad;
                          Fmt.epr "bench-check: %s: %s@." path msg)
                  ceilings))
      files;
    if !bad > 0 then exit 1
  in
  Cmd.v (Cmd.info "bench-check" ~doc)
    Term.(const run $ files $ floors $ ceilings)

let () =
  let doc =
    "Replication techniques from 'Understanding Replication in Databases \
     and Distributed Systems' (Wiesmann et al., ICDCS 2000), reproduced on \
     a discrete-event simulator."
  in
  let info = Cmd.info "replisim" ~version:Workload.Report.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            config_cmd;
            run_cmd;
            trace_cmd;
            explain_cmd;
            metrics_cmd;
            campaign_cmd;
            timeline_cmd;
            profile_cmd;
            audit_cmd;
            sweep_cmd;
            compare_cmd;
            bench_check_cmd;
          ]))
