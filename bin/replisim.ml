(* replisim — run any of the paper's replication techniques under a
   configurable workload on the simulated cluster.

     replisim list
     replisim run -t eager-ue-abcast -n 5 --clients 4 --updates 0.8
     replisim run -t passive --crash 0@100ms
     replisim trace -t active
*)

open Cmdliner

let technique_conv =
  let parse s =
    match Protocols.Registry.find s with
    | Some entry -> Ok entry
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown technique %S (try: %s)" s
               (String.concat " " Protocols.Registry.keys)))
  in
  let print ppf (key, _, _) = Format.pp_print_string ppf key in
  Arg.conv (parse, print)

let technique_arg =
  Arg.(
    required
    & opt (some technique_conv) None
    & info [ "t"; "technique" ] ~docv:"TECHNIQUE"
        ~doc:
          (Printf.sprintf "Replication technique to run. One of: %s."
             (String.concat ", " Protocols.Registry.keys)))

let crash_conv =
  (* Accepts 0@100ms, 0@100 (ms) and 0@1s / 0@1.5s. *)
  let parse s =
    match String.split_on_char '@' s with
    | [ replica; at ] -> (
        let time =
          if Filename.check_suffix at "ms" then
            Option.map Sim.Simtime.of_ms
              (int_of_string_opt (Filename.chop_suffix at "ms"))
          else if Filename.check_suffix at "s" then
            Option.map Sim.Simtime.of_sec
              (float_of_string_opt (Filename.chop_suffix at "s"))
          else Option.map Sim.Simtime.of_ms (int_of_string_opt at)
        in
        match (int_of_string_opt replica, time) with
        | Some r, _ when r < 0 ->
            Error
              (`Msg
                (Printf.sprintf "replica id must be non-negative, got %d" r))
        | Some r, Some at -> Ok { Workload.Runner.at; replica = r }
        | _ -> Error (`Msg "expected REPLICA@TIME, e.g. 0@100ms or 0@1s"))
    | _ -> Error (`Msg "expected REPLICA@TIME, e.g. 0@100ms or 0@1s")
  in
  let print ppf { Workload.Runner.at; replica } =
    Format.fprintf ppf "%d@%a" replica Sim.Simtime.pp at
  in
  Arg.conv (parse, print)

(* ---- list ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the implemented replication techniques." in
  let run () =
    List.iter
      (fun (key, info, _) ->
        Fmt.pr "%-18s %a@." key Core.Technique.pp_info info)
      Protocols.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- run ------------------------------------------------------------ *)

let run_cmd =
  let doc = "Run a workload against a technique and report the metrics." in
  let replicas =
    Arg.(value & opt int 3 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replica count.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"M" ~doc:"Client count.")
  in
  let updates =
    Arg.(
      value & opt float 0.5
      & info [ "updates" ] ~docv:"RATIO" ~doc:"Fraction of update transactions.")
  in
  let txns =
    Arg.(
      value & opt int 50
      & info [ "txns" ] ~docv:"T" ~doc:"Transactions per client.")
  in
  let ops =
    Arg.(
      value & opt int 1
      & info [ "ops" ] ~docv:"K" ~doc:"Operations per transaction.")
  in
  let keys =
    Arg.(value & opt int 100 & info [ "keys" ] ~docv:"K" ~doc:"Database size.")
  in
  let skew =
    Arg.(
      value & opt float 0.6
      & info [ "skew" ] ~docv:"THETA" ~doc:"Zipfian access skew (0 = uniform).")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let crashes =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"R@TIME"
          ~doc:
            "Crash replica R at TIME (repeatable), e.g. --crash 0@100ms or \
             --crash 0@1s.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit the result as a CSV row (with header).")
  in
  let run (key, _, factory) n m updates txns ops keys skew seed crashes csv =
    let spec =
      {
        Workload.Spec.n_keys = keys;
        key_skew = skew;
        update_ratio = updates;
        ops_per_txn = ops;
        txns_per_client = txns;
        think_time = Sim.Simtime.of_ms 1;
      }
    in
    let result =
      Workload.Runner.run ~seed ~n_replicas:n ~n_clients:m ~failures:crashes
        ~spec
        (fun net ~replicas ~clients -> factory net ~replicas ~clients)
    in
    if csv then begin
      let label = Printf.sprintf "%s;n=%d;upd=%.2f;seed=%d" key n updates seed in
      Workload.Report.to_csv Fmt.stdout [ (label, result) ];
      exit 0
    end;
    Fmt.pr "workload  : %a@." Workload.Spec.pp spec;
    Fmt.pr "result    : %a@." Workload.Runner.pp_result result;
    Fmt.pr "latencies : all [%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.latency_ms;
    Fmt.pr "            upd [%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.update_latency_ms;
    Fmt.pr "            read[%a]@." Workload.Stats.pp_summary
      result.Workload.Runner.read_latency_ms;
    Fmt.pr "failover  : max response gap %a@." Sim.Simtime.pp
      result.Workload.Runner.max_response_gap;
    List.iter
      (fun (phase, s) ->
        Fmt.pr "phase %-3s : [%a]@." (Core.Phase.code phase)
          Workload.Stats.pp_summary s)
      result.Workload.Runner.phase_ms
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ technique_arg $ replicas $ clients $ updates $ txns $ ops
      $ keys $ skew $ seed $ crashes $ csv)

(* ---- trace ---------------------------------------------------------- *)

let trace_cmd =
  let doc =
    "Run a single transaction and print its phase trace (the paper's \
     timeline figures), optionally as JSONL or Chrome trace_event JSON."
  in
  let nondet =
    Arg.(
      value & flag
      & info [ "nondet" ]
          ~doc:"Use a non-deterministic write (exercises semi-active's AC).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("pretty", `Pretty); ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Pretty
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,pretty) (human-readable marks), $(b,jsonl) \
             (one JSON object per span) or $(b,chrome) (trace_event JSON for \
             Perfetto / chrome://tracing).")
  in
  let run (_, (info : Core.Technique.info), factory) nondet format =
    let engine = Sim.Engine.create ~seed:3 () in
    let net = Sim.Network.create engine ~n:4 Sim.Network.default_config in
    let inst = factory net ~replicas:[ 0; 1; 2 ] ~clients:[ 3 ] in
    let ops =
      if nondet then [ Store.Operation.Write_random "x" ]
      else [ Store.Operation.Incr ("x", 1) ]
    in
    let request = Store.Operation.request ~client:3 ops in
    inst.Core.Technique.submit ~client:3 request (fun _ -> ());
    ignore (Sim.Engine.run ~until:(Sim.Simtime.of_sec 10.) engine);
    let rid = request.Store.Operation.rid in
    let spans = inst.Core.Technique.spans in
    Core.Phase_span.finalize spans ~at:(Sim.Engine.now engine);
    match format with
    | `Jsonl ->
        print_endline (Sim.Trace_export.to_jsonl (Core.Phase_span.collector spans))
    | `Chrome ->
        print_endline (Sim.Trace_export.to_chrome (Core.Phase_span.collector spans))
    | `Pretty ->
        Fmt.pr "technique : %s (paper §%s)@." info.name info.section;
        Fmt.pr "signature : %a   [paper row: %a]@." Core.Phase.pp_sequence
          (Core.Phase_span.signature spans ~rid)
          Core.Phase.pp_sequence info.expected_phases;
        Core.Phase_trace.pp_marks Fmt.stdout
          (Core.Phase_trace.marks inst.Core.Technique.phases ~rid);
        Fmt.pr "spans     :@.";
        List.iter
          (fun (_, span) ->
            Fmt.pr "  %a (%.3f ms)@." Sim.Span.pp_span span
              (Option.value ~default:0. (Sim.Span.duration_ms span)))
          (Core.Phase_span.phase_spans spans ~rid)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ technique_arg $ nondet $ format)

(* ---- metrics -------------------------------------------------------- *)

let metrics_cmd =
  let doc =
    "Run a workload against a technique and print its metrics registry \
     (counters, gauges, per-phase latency histograms)."
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replica count.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"M" ~doc:"Client count.")
  in
  let updates =
    Arg.(
      value & opt float 0.5
      & info [ "updates" ] ~docv:"RATIO" ~doc:"Fraction of update transactions.")
  in
  let txns =
    Arg.(
      value & opt int 50
      & info [ "txns" ] ~docv:"T" ~doc:"Transactions per client.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the metrics snapshot as a JSON array.")
  in
  let run (key, _, factory) n m updates txns seed json =
    let spec =
      {
        Workload.Spec.n_keys = 100;
        key_skew = 0.6;
        update_ratio = updates;
        ops_per_txn = 1;
        txns_per_client = txns;
        think_time = Sim.Simtime.of_ms 1;
      }
    in
    let result =
      Workload.Runner.run ~seed ~n_replicas:n ~n_clients:m ~spec
        (fun net ~replicas ~clients -> factory net ~replicas ~clients)
    in
    if json then
      print_endline (Sim.Metrics.snapshot_to_json result.Workload.Runner.metrics)
    else begin
      Fmt.pr "technique : %s@." key;
      Fmt.pr "result    : %a@.@." Workload.Runner.pp_result result;
      Workload.Report.phases_to_csv Fmt.stdout [ (key, result) ];
      Fmt.pr "@.";
      Sim.Metrics.pp_snapshot Fmt.stdout result.Workload.Runner.metrics
    end
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ technique_arg $ replicas $ clients $ updates $ txns $ seed
      $ json)

let () =
  let doc =
    "Replication techniques from 'Understanding Replication in Databases \
     and Distributed Systems' (Wiesmann et al., ICDCS 2000), reproduced on \
     a discrete-event simulator."
  in
  let info = Cmd.info "replisim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd; metrics_cmd ]))
